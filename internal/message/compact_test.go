package message

import (
	"math/rand"
	"testing"
	"testing/quick"

	"desis/internal/event"
)

func TestCompactRoundTrip(t *testing.T) {
	checkRoundTrip(t, Compact{}, sampleMessages())
	// Control-plane fallback envelope.
	checkRoundTrip(t, Compact{}, controlMessages())
}

func TestCompactSmallerThanBinaryOnBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	evs := make([]event.Event, 512)
	tm := int64(1_700_000_000_000)
	for i := range evs {
		tm += int64(rng.Intn(5))
		evs[i] = event.Event{Time: tm, Key: uint32(rng.Intn(10)), Value: rng.Float64() * 100}
	}
	m := &Message{Kind: KindEventBatch, From: 1, Events: evs}
	bin, err := Binary{}.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compact{}.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	// Delta-varint times (1 byte vs 8) and varint keys should roughly
	// halve the batch.
	if len(cmp) >= len(bin)*2/3 {
		t.Errorf("compact batch %d bytes, binary %d — expected at least 1/3 savings", len(cmp), len(bin))
	}
}

func TestCompactQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := make([]event.Event, int(n)%64)
		tm := rng.Int63n(1 << 40)
		for i := range evs {
			tm += int64(rng.Intn(1000))
			evs[i] = event.Event{
				Time:   tm,
				Key:    rng.Uint32(),
				Marker: uint8(rng.Intn(2)),
				Value:  rng.NormFloat64() * 1e6,
			}
		}
		m := &Message{Kind: KindEventBatch, From: rng.Uint32(), Events: evs}
		buf, err := Compact{}.Append(nil, m)
		if err != nil {
			return false
		}
		got, err := Compact{}.Decode(buf)
		if err != nil {
			return false
		}
		return messagesEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompactTruncated(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Compact{}.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(buf); i++ {
			// Must never panic; errors are fine (a few prefixes decode as
			// valid shorter messages, e.g. truncated batches with a smaller
			// count are impossible here because the count is leading).
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic decoding %d/%d bytes of kind %d: %v", i, len(buf), m.Kind, r)
					}
				}()
				_, _ = Compact{}.Decode(buf[:i])
			}()
		}
	}
}

func TestCompactPipeEndToEnd(t *testing.T) {
	a, b := NewPipe(Compact{}, 4)
	want := sampleMessages()
	go func() {
		for _, m := range want {
			if err := a.Send(m); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		a.Close()
	}()
	for _, w := range want {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !messagesEqual(got, w) {
			t.Fatalf("mismatch: got %+v want %+v", got, w)
		}
	}
}
