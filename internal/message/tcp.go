package message

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// maxFrame bounds a single message frame (64 MiB), protecting against
// corrupt length prefixes.
const maxFrame = 64 << 20

// TCPConn is a Conn over a TCP socket with 4-byte length framing.
type TCPConn struct {
	c     net.Conn
	codec Codec
	r     *bufio.Reader
	w     *bufio.Writer
	wmu   sync.Mutex
	sent  atomic.Uint64
}

// NewTCPConn wraps an established connection. The same codec must be used on
// both ends.
func NewTCPConn(c net.Conn, codec Codec) *TCPConn {
	return &TCPConn{
		c:     c,
		codec: codec,
		r:     bufio.NewReaderSize(c, 1<<16),
		w:     bufio.NewWriterSize(c, 1<<16),
	}
}

// Dial connects to a Desis node at addr.
func Dial(addr string, codec Codec) (*TCPConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("message: dial %s: %w", addr, err)
	}
	return NewTCPConn(c, codec), nil
}

// Send implements Conn. It is safe for concurrent use.
func (t *TCPConn) Send(m *Message) error {
	payload, err := t.codec.Append(nil, m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(payload); err != nil {
		return err
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	t.sent.Add(uint64(len(payload)) + 4)
	return nil
}

// Recv implements Conn.
func (t *TCPConn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("message: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.r, payload); err != nil {
		return nil, err
	}
	return t.codec.Decode(payload)
}

// Close implements Conn.
func (t *TCPConn) Close() error {
	t.wmu.Lock()
	t.w.Flush()
	t.wmu.Unlock()
	return t.c.Close()
}

// BytesSent implements Conn.
func (t *TCPConn) BytesSent() uint64 { return t.sent.Load() }

// Listener accepts Desis node connections.
type Listener struct {
	l     net.Listener
	codec Codec
}

// Listen starts a listener on addr (e.g. ":7070").
func Listen(addr string, codec Codec) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("message: listen %s: %w", addr, err)
	}
	return &Listener{l: l, codec: codec}, nil
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*TCPConn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c, l.codec), nil
}

// Addr returns the bound address, useful with ":0" listeners.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }

var _ Conn = (*TCPConn)(nil)
var _ Conn = (*Pipe)(nil)
