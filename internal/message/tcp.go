package message

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrame bounds a single message frame (64 MiB), protecting against
// corrupt length prefixes.
const maxFrame = 64 << 20

// ErrTimeout is returned (wrapped) by RecvTimeout when no complete frame
// arrived within the configured deadline — the §3.2 liveness condition.
// Callers distinguish it from io.EOF (peer closed cleanly) and from decode
// or framing errors (corrupt stream) with errors.Is.
var ErrTimeout = errors.New("message: receive timed out")

// ErrFrameTooLarge is returned (wrapped) when a length prefix exceeds the
// frame limit; the stream is unrecoverable past this point.
var ErrFrameTooLarge = errors.New("message: frame exceeds limit")

// TCPConn is a Conn over a TCP socket with 4-byte length framing. Send is
// safe for concurrent use; Recv/RecvTimeout must be called from a single
// reader goroutine.
type TCPConn struct {
	c     net.Conn
	codec Codec
	r     *bufio.Reader
	w     *bufio.Writer
	wmu   sync.Mutex
	sent  atomic.Uint64

	// rdArmed tracks whether a read deadline is currently set on the
	// socket, so an untimed Recv after a RecvTimeout clears it. Only the
	// reader goroutine touches it.
	rdArmed bool
	// writeTimeout bounds each Send (and the final flush in Close); zero
	// means no write deadline.
	writeTimeout atomic.Int64
}

// NewTCPConn wraps an established connection. The same codec must be used on
// both ends.
func NewTCPConn(c net.Conn, codec Codec) *TCPConn {
	return &TCPConn{
		c:     c,
		codec: codec,
		r:     bufio.NewReaderSize(c, 1<<16),
		w:     bufio.NewWriterSize(c, 1<<16),
	}
}

// Dial connects to a Desis node at addr.
func Dial(addr string, codec Codec) (*TCPConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("message: dial %s: %w", addr, err)
	}
	return NewTCPConn(c, codec), nil
}

// SetWriteTimeout bounds every subsequent Send (and the final flush in
// Close) with a write deadline, so a stalled peer cannot block a sender
// forever. Zero disables the deadline. Safe for concurrent use.
func (t *TCPConn) SetWriteTimeout(d time.Duration) { t.writeTimeout.Store(int64(d)) }

// Send implements Conn. It is safe for concurrent use.
func (t *TCPConn) Send(m *Message) error {
	payload, err := t.codec.Append(nil, m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if d := time.Duration(t.writeTimeout.Load()); d > 0 {
		_ = t.c.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(payload); err != nil {
		return err
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	t.sent.Add(uint64(len(payload)) + 4)
	return nil
}

// Recv implements Conn. It blocks until a full frame arrives or the peer
// closes (io.EOF).
func (t *TCPConn) Recv() (*Message, error) { return t.RecvTimeout(0) }

// RecvTimeout is Recv bounded by a read deadline on the socket: if no
// complete frame arrives within d the error wraps ErrTimeout. A
// non-positive d blocks forever, like Recv. The deadline covers the whole
// frame, so a peer trickling a partial frame slower than d also times out.
// No goroutines or timers are allocated — the deadline is enforced by the
// kernel via SetReadDeadline, O(1) state per connection regardless of how
// many messages are received.
func (t *TCPConn) RecvTimeout(d time.Duration) (*Message, error) {
	if d > 0 {
		if err := t.c.SetReadDeadline(time.Now().Add(d)); err != nil {
			return nil, err
		}
		t.rdArmed = true
	} else if t.rdArmed {
		if err := t.c.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
		t.rdArmed = false
	}
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, t.classify(err, d)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.r, payload); err != nil {
		return nil, t.classify(err, d)
	}
	return t.codec.Decode(payload)
}

// classify maps a transport read error to the protocol taxonomy: deadline
// expiries become ErrTimeout, a clean close before any frame byte stays
// io.EOF, and everything else (including a peer dying mid-frame, reported
// as io.ErrUnexpectedEOF) passes through.
func (t *TCPConn) classify(err error, d time.Duration) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w after %v", ErrTimeout, d)
	}
	return err
}

// Close implements Conn.
func (t *TCPConn) Close() error {
	t.wmu.Lock()
	if d := time.Duration(t.writeTimeout.Load()); d > 0 {
		_ = t.c.SetWriteDeadline(time.Now().Add(d))
	}
	t.w.Flush()
	t.wmu.Unlock()
	return t.c.Close()
}

// BytesSent implements Conn.
func (t *TCPConn) BytesSent() uint64 { return t.sent.Load() }

// Listener accepts Desis node connections.
type Listener struct {
	l     net.Listener
	codec Codec
}

// Listen starts a listener on addr (e.g. ":7070").
func Listen(addr string, codec Codec) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("message: listen %s: %w", addr, err)
	}
	return &Listener{l: l, codec: codec}, nil
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*TCPConn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c, l.codec), nil
}

// Addr returns the bound address, useful with ":0" listeners.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }

var _ Conn = (*TCPConn)(nil)
var _ Conn = (*Pipe)(nil)
