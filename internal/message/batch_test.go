package message

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"desis/internal/core"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/telemetry"
)

// randomBatch builds a batch resembling a local node's uplink stream:
// monotone slice ids and times per group, interleaved watermarks.
func randomBatch(rng *rand.Rand, nFrames int) *Batch {
	b := &Batch{}
	groups := 1 + rng.Intn(3)
	ids := make([]uint64, groups)
	tm := rng.Int63n(1 << 40)
	wm := tm
	for i := 0; i < nFrames; i++ {
		if rng.Intn(5) == 0 {
			wm += int64(rng.Intn(1000))
			b.Frames = append(b.Frames, &Message{Kind: KindWatermark, Watermark: wm})
			continue
		}
		g := rng.Intn(groups)
		ids[g]++
		tm += int64(rng.Intn(500))
		ops := operator.OpCount | operator.OpSum
		if rng.Intn(2) == 0 {
			ops |= operator.OpDSort
		}
		if rng.Intn(4) == 0 {
			ops |= operator.OpNDSort | operator.OpMult
		}
		nCtx := 1 + rng.Intn(2)
		p := &core.SlicePartial{
			Group: uint32(g), ID: ids[g],
			Start: tm, End: tm + int64(rng.Intn(500)) + 1,
			LastEvent: tm + int64(rng.Intn(400)),
			Ingested:  int64(rng.Intn(100)),
		}
		for c := 0; c < nCtx; c++ {
			a := operator.NewAgg(ops)
			for e := rng.Intn(6); e > 0; e-- {
				a.Add(rng.NormFloat64() * 100)
			}
			a.Finish()
			p.Aggs = append(p.Aggs, a)
		}
		if rng.Intn(6) == 0 {
			p.EPs = append(p.EPs, core.EP{
				QueryIdx: int32(rng.Intn(4)),
				Start:    tm - 1000, End: tm,
				GapStart: tm - int64(rng.Intn(100)),
			})
		}
		b.Frames = append(b.Frames, &Message{Kind: KindPartial, Partial: p})
	}
	return b
}

// TestBatchCrossCodec is the cross-codec property test: the same batch
// encoded by Binary, Compact and Text must decode to identical frame
// sequences under every codec, compressed or not.
func TestBatchCrossCodec(t *testing.T) {
	codecs := []Codec{Binary{}, Compact{}, Text{}}
	f := func(seed int64, n uint8, compress bool) bool {
		rng := rand.New(rand.NewSource(seed))
		batch := randomBatch(rng, int(n)%40)
		m := &Message{Kind: KindBatch, From: rng.Uint32(), Batch: batch}
		m.Batch.Compress = compress
		var decoded []*Message
		for _, c := range codecs {
			buf, err := c.Append(nil, m)
			if err != nil {
				t.Logf("%s: append: %v", c.Name(), err)
				return false
			}
			got, err := c.Decode(buf)
			if err != nil {
				t.Logf("%s: decode: %v", c.Name(), err)
				return false
			}
			if got.Kind != KindBatch || got.From != m.From || got.Batch == nil {
				return false
			}
			if len(got.Batch.Frames) != len(batch.Frames) {
				return false
			}
			for i, fr := range got.Batch.Frames {
				// Decoded frames carry the batch sender id.
				want := *batch.Frames[i]
				want.From = m.From
				if !messagesEqual(fr, &want) {
					t.Logf("%s: frame %d mismatch:\n got %+v\nwant %+v", c.Name(), i, fr, &want)
					return false
				}
			}
			decoded = append(decoded, got.Batch.Frames...)
		}
		// All codecs agree with each other frame by frame.
		per := len(batch.Frames)
		for i := 0; i < per; i++ {
			for c := 1; c < len(codecs); c++ {
				if !messagesEqual(decoded[i], decoded[c*per+i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestBatchColumnarSmaller checks that the columnar layout beats the
// concatenation of individual Compact frames on a realistic uplink run, and
// that deflate shrinks it further.
func TestBatchColumnarSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batch := randomBatch(rng, 256)
	m := &Message{Kind: KindBatch, From: 1, Batch: batch}
	batched, err := Compact{}.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	var single int
	for _, f := range batch.Frames {
		fm := *f
		fm.From = 1
		buf, err := Compact{}.Append(nil, &fm)
		if err != nil {
			t.Fatal(err)
		}
		single += len(buf) + 4 // plus the transport's length framing
	}
	if len(batched) >= single {
		t.Errorf("columnar batch %d bytes, individual frames %d", len(batched), single)
	}
	m.Batch.Compress = true
	compressed, err := Compact{}.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(batched) {
		t.Errorf("deflated batch %d bytes, raw columnar %d", len(compressed), len(batched))
	}
	t.Logf("individual=%d columnar=%d deflated=%d", single, len(batched), len(compressed))
}

// TestBatchRejectsUnbatchable verifies control frames cannot ride in a batch.
func TestBatchRejectsUnbatchable(t *testing.T) {
	m := &Message{Kind: KindBatch, From: 1, Batch: &Batch{Frames: []*Message{
		{Kind: KindHello, From: 1},
	}}}
	for _, c := range []Codec{Binary{}, Compact{}, Text{}} {
		if _, err := c.Append(nil, m); err == nil {
			t.Errorf("%s: encoding a batch with a control frame succeeded", c.Name())
		}
	}
}

// TestBatcherAdaptiveFill drives a batcher over a blocking link and checks
// the self-clocking behavior: a slow link amortizes many frames per flush,
// a fast link stays near one frame per flush.
func TestBatcherAdaptiveFill(t *testing.T) {
	makePartial := func(id uint64) *core.SlicePartial {
		a := operator.NewAgg(operator.OpCount | operator.OpSum)
		a.Add(float64(id))
		a.Finish()
		return &core.SlicePartial{Group: 0, ID: id, Start: int64(id) * 100, End: int64(id+1) * 100, Aggs: []operator.Agg{a}}
	}

	t.Run("slow link amortizes", func(t *testing.T) {
		var mu sync.Mutex
		var sends []int
		slow := func(m *Message) error {
			mu.Lock()
			if m.Kind == KindBatch {
				sends = append(sends, len(m.Batch.Frames))
			} else {
				sends = append(sends, 1)
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			return nil
		}
		b := NewBatcher(slow, 1, BatcherOptions{})
		for i := 0; i < 200; i++ {
			if err := b.Send(&Message{Kind: KindPartial, From: 1, Partial: makePartial(uint64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		var total int
		for _, n := range sends {
			total += n
		}
		if total != 200 {
			t.Fatalf("sent %d frames, want 200 (%v)", total, sends)
		}
		if len(sends) > 100 {
			t.Errorf("slow link produced %d flushes for 200 frames — no amortization", len(sends))
		}
	})

	t.Run("fast link stays immediate", func(t *testing.T) {
		var mu sync.Mutex
		var sends []int
		fast := func(m *Message) error {
			mu.Lock()
			if m.Kind == KindBatch {
				sends = append(sends, len(m.Batch.Frames))
			} else {
				sends = append(sends, 1)
			}
			mu.Unlock()
			return nil
		}
		b := NewBatcher(fast, 1, BatcherOptions{})
		for i := 0; i < 100; i++ {
			if err := b.Send(&Message{Kind: KindPartial, From: 1, Partial: makePartial(uint64(i))}); err != nil {
				t.Fatal(err)
			}
			if err := b.Flush(); err != nil { // producer paced slower than the link
				t.Fatal(err)
			}
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		for i, n := range sends {
			if n != 1 {
				t.Errorf("flush %d carried %d frames on an idle link, want 1", i, n)
			}
		}
	})
}

// TestBatcherControlFlushesFirst checks that a non-batchable frame flushes
// the queued data frames before travelling itself, preserving order. The
// first transmission is held open (on its own goroutine — an idle batcher
// sends cut-through on the caller's thread) so later frames queue behind it.
func TestBatcherControlFlushesFirst(t *testing.T) {
	var mu sync.Mutex
	var order []Kind
	gate := make(chan struct{})
	entered := make(chan struct{})
	first := true
	send := func(m *Message) error {
		mu.Lock()
		hold := first
		first = false
		mu.Unlock()
		if hold {
			close(entered)
			<-gate // hold the first transmission so frames queue behind it
		}
		mu.Lock()
		if m.Kind == KindBatch {
			for _, f := range m.Batch.Frames {
				order = append(order, f.Kind)
			}
		} else {
			order = append(order, m.Kind)
		}
		mu.Unlock()
		return nil
	}
	b := NewBatcher(send, 1, BatcherOptions{})
	p := samplePartial()
	firstDone := make(chan error, 1)
	go func() { firstDone <- b.Send(&Message{Kind: KindPartial, From: 1, Partial: p}) }()
	<-entered // the partial owns the link now
	if err := b.Send(&Message{Kind: KindWatermark, From: 1, Watermark: 5}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Send(&Message{Kind: KindGoodbye, From: 1}) }()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []Kind{KindPartial, KindWatermark, KindGoodbye}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestBatcherStickyError checks an asynchronous transmission failure
// surfaces on later Sends and Flushes.
func TestBatcherStickyError(t *testing.T) {
	boom := errors.New("boom")
	b := NewBatcher(func(*Message) error { return boom }, 1, BatcherOptions{})
	_ = b.Send(&Message{Kind: KindWatermark, From: 1, Watermark: 1})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := b.Flush(); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("sticky error %v, want %v", err, boom)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("error never became sticky")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Send(&Message{Kind: KindWatermark, From: 1, Watermark: 2}); !errors.Is(err, boom) {
		t.Fatalf("Send after failure = %v, want %v", err, boom)
	}
	_ = b.Close()
}

// TestBatcherClonesPartials checks the Conn contract: the caller may
// recycle a partial as soon as Send returns, even when transmission is
// deferred. A held watermark occupies the link first so the partial takes
// the queued (asynchronous) path.
func TestBatcherClonesPartials(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var mu sync.Mutex
	var got *core.SlicePartial
	send := func(m *Message) error {
		if m.Kind == KindWatermark {
			close(entered)
			<-release
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if m.Kind == KindBatch {
			got = m.Batch.Frames[0].Partial
		} else {
			got = m.Partial
		}
		return nil
	}
	b := NewBatcher(send, 1, BatcherOptions{})
	wmDone := make(chan error, 1)
	go func() { wmDone <- b.Send(&Message{Kind: KindWatermark, From: 1, Watermark: 1}) }()
	<-entered
	p := samplePartial()
	if err := b.Send(&Message{Kind: KindPartial, From: 1, Partial: p}); err != nil {
		t.Fatal(err)
	}
	// Caller recycles immediately after Send returned, while the frame is
	// still queued behind the held watermark.
	p.ID = 999999
	p.Aggs[0].SumV = -1
	close(release)
	if err := <-wmDone; err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("nothing transmitted")
	}
	if got.ID == 999999 || got.Aggs[0].SumV == -1 {
		t.Error("batcher transmitted the caller's storage, not a clone")
	}
}

// TestBatcherCompressionProbe checks CompressAuto backs off on
// incompressible payloads and engages on compressible ones.
func TestBatcherCompressionProbe(t *testing.T) {
	p := newCompressProbe(CompressAuto)
	if !p.shouldTry() {
		t.Fatal("fresh auto probe must try once")
	}
	p.observe(1000, 990) // incompressible
	tried := 0
	for i := 0; i < probeInterval; i++ {
		if p.shouldTry() {
			tried++
		}
	}
	if tried != 0 {
		t.Errorf("probe tried %d times during backoff", tried)
	}
	if !p.shouldTry() {
		t.Error("probe never re-probed after backoff")
	}
	p.observe(1000, 400) // compressible now
	if !p.shouldTry() {
		t.Error("probe inactive despite winning ratio")
	}
	if r := p.ratioMilli.Load(); r != 400 {
		t.Errorf("ratio %d, want 400", r)
	}
}

// TestBatcherTelemetry checks the instruments move.
func TestBatcherTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewBatcher(func(*Message) error { return nil }, 1, BatcherOptions{})
	b.AttachTelemetry(reg)
	for i := 0; i < 10; i++ {
		if err := b.Send(&Message{Kind: KindWatermark, From: 1, Watermark: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(&Message{Kind: KindHeartbeat, From: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["batch.frames"] != 10 {
		t.Errorf("batch.frames = %d, want 10", s.Counters["batch.frames"])
	}
	if s.Counters["batch.flushes"] == 0 {
		t.Error("batch.flushes never moved")
	}
	if s.Counters["batch.flush.control"] != 1 {
		t.Errorf("batch.flush.control = %d, want 1", s.Counters["batch.flush.control"])
	}
}

// FuzzDecodeBatch throws arbitrary bytes at the columnar batch decoder:
// hostile input must error, never panic or balloon memory, and whatever
// decodes must re-encode and re-decode to the same frames.
func FuzzDecodeBatch(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 5, 40} {
		b := randomBatch(rng, n)
		m := &Message{Kind: KindBatch, From: 7, Batch: b}
		buf, err := Binary{}.Append(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[5:]) // the batch body without the kind/from header
		m.Batch.Compress = true
		buf, err = Binary{}.Append(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[5:])
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 0x0f}) // huge claimed frame count
	f.Add([]byte{batchFlagDeflate, 0x01})          // broken flate stream
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := decodeBatchBody(body, 7)
		if err != nil {
			return
		}
		enc, err := appendBatchBody(nil, b)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		b2, err := decodeBatchBody(enc, 7)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if len(b2.Frames) != len(b.Frames) {
			t.Fatalf("re-decode has %d frames, want %d", len(b2.Frames), len(b.Frames))
		}
		for i := range b.Frames {
			if !messagesEqual(b.Frames[i], b2.Frames[i]) {
				t.Fatalf("frame %d changed across re-encode", i)
			}
		}
	})
}

// TestAppendBatchBodySteadyStateAllocs enforces the //desis:hotpath contract
// dynamically: once the scratch pool is warm and the destination buffer has
// its capacity, encoding a batch performs zero heap allocations.
func TestAppendBatchBodySteadyStateAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("desis_invariants builds trade allocations for verification")
	}
	rng := rand.New(rand.NewSource(7))
	b := randomBatch(rng, 40)
	buf, err := appendBatchBody(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	buf = buf[:0]
	if avg := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = appendBatchBody(buf[:0], b)
		if err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("appendBatchBody allocates %.1f times per batch in steady state, want 0", avg)
	}
}
