package message

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"desis/internal/telemetry"
)

// CompressMode selects a Batcher's compression policy for batch bodies.
type CompressMode uint8

// Compression policies.
const (
	// CompressOff never deflates.
	CompressOff CompressMode = iota
	// CompressOn asks for deflate on every batch (the encoder still keeps
	// the raw body when compression does not pay).
	CompressOn
	// CompressAuto probes the link periodically: compression stays enabled
	// while the measured ratio keeps beating the threshold, and a link whose
	// payload does not compress re-probes only occasionally, so incompressible
	// streams pay (almost) no deflate CPU.
	CompressAuto
)

// compressProbe is the per-link ratio probe behind CompressAuto. The encoder
// consults shouldTry before deflating and reports every measured outcome to
// observe, so the decision always reflects this link's actual payload.
type compressProbe struct {
	mode CompressMode

	mu        sync.Mutex
	active    bool
	countdown int // batches until the next probe while inactive

	// ratioMilli is the last measured compressed/raw ratio ×1000, atomic so
	// telemetry mirrors read it without the probe lock.
	ratioMilli atomic.Int64
	gauge      *telemetry.Gauge
}

// probeInterval is how many batches an inactive CompressAuto probe skips
// between deflate attempts.
const probeInterval = 32

// compressKeepRatioMilli is the measured ratio (×1000) below which the
// adaptive probe keeps compression enabled.
const compressKeepRatioMilli = 900

func newCompressProbe(mode CompressMode) *compressProbe {
	return &compressProbe{mode: mode, active: mode == CompressOn}
}

func (c *compressProbe) shouldTry() bool {
	switch c.mode {
	case CompressOn:
		return true
	case CompressAuto:
	default:
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active {
		return true
	}
	if c.countdown > 0 {
		c.countdown--
		return false
	}
	return true // probe batch
}

func (c *compressProbe) observe(rawLen, compLen int) {
	if rawLen <= 0 {
		return
	}
	ratio := int64(compLen) * 1000 / int64(rawLen)
	c.ratioMilli.Store(ratio)
	c.gauge.Set(ratio)
	if c.mode != CompressAuto {
		return
	}
	c.mu.Lock()
	c.active = ratio <= compressKeepRatioMilli
	if !c.active {
		c.countdown = probeInterval
	}
	c.mu.Unlock()
}

// BatcherOptions shapes a Batcher.
type BatcherOptions struct {
	// MaxFrames caps the frames coalesced into one batch (default 512).
	MaxFrames int
	// MaxBytes caps the approximate pre-compression body size of one batch
	// (default 256 KiB). Kept modest so a slow link transmits each frame
	// well inside the parent's liveness timeout.
	MaxBytes int
	// Queue bounds the pending-frame queue (default 4096); a full queue
	// blocks Send, which is the backpressure that makes throughput
	// measurements sustainable.
	Queue int
	// Compress selects the body compression policy (default CompressOff).
	Compress CompressMode
	// NoCutThrough disables the synchronous fast path: every batchable frame
	// queues behind the pump even when the link measures fast. Useful when
	// per-transmission cost dominates regardless of speed (energy-constrained
	// or per-message-billed links) and for deterministic coalescing in tests.
	NoCutThrough bool
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxFrames <= 0 {
		o.MaxFrames = 512
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 10
	}
	if o.Queue <= 0 {
		o.Queue = 4096
	}
	return o
}

// Batcher coalesces outgoing partial/watermark frames into KindBatch frames.
//
// It is deliberately self-clocking rather than timer-driven, with two modes
// selected by the measured transmission time of recent sends:
//
//   - Cut-through (fast link): while the send-time EWMA stays under
//     cutThroughNanos and nothing is queued or in flight, Send transmits the
//     frame synchronously on the caller's thread — no goroutine hop, no added
//     latency, and the wire is byte-identical to the unbatched protocol.
//   - Pumped (slow link): once transmissions are observably slow, frames
//     queue behind a dedicated sender goroutine that drains everything
//     accumulated since its last transmission into one batch, then blocks in
//     the underlying send. The send blocks, frames pile up behind it, and the
//     next batch is large — the flush size adapts to exactly the ratio of
//     producer rate to link throughput, with MaxFrames/MaxBytes as the size
//     watermark and the previous batch's transmission time as the implicit
//     latency watermark.
//
// Queue depth and send time are therefore the only control signals, and both
// are observed, never configured. A link that speeds back up drains its
// batches quickly, the EWMA falls, and the batcher returns to cut-through.
//
// Frames whose kind is not batchable (control traffic, heartbeats, raw event
// batches) flush everything queued first and are then sent synchronously, so
// cross-kind ordering from one producer is preserved and an open batch never
// starves a heartbeat.
type Batcher struct {
	send func(*Message) error
	from uint32
	opts BatcherOptions

	probe *compressProbe

	// sendNanos is the EWMA of recent transmission times (α=1/4, atomic so
	// Send's fast-path check stays lock-cheap). Starts at zero: a fresh link
	// is assumed fast until a send proves otherwise.
	sendNanos atomic.Int64

	mu sync.Mutex
	// cond wakes Flush and queue-full Send waiters; pumpCond wakes only the
	// sender pump. Separate conditions keep the steady-state cut-through path
	// from waking the (otherwise always-parked) pump on every frame.
	cond     *sync.Cond
	pumpCond *sync.Cond
	queue    []*Message
	inFlight bool
	closed   bool
	err      error
	done     chan struct{}

	telFlushes      *telemetry.Counter
	telFrames       *telemetry.Counter
	telFlushSize    *telemetry.Counter
	telFlushDrain   *telemetry.Counter
	telFlushControl *telemetry.Counter
	telQueue        *telemetry.Gauge
}

// NewBatcher starts a batcher whose batches are transmitted by send (which
// must tolerate being called from the batcher's goroutine and, for control
// frames, from the caller's). from stamps the batches' sender id.
func NewBatcher(send func(*Message) error, from uint32, opts BatcherOptions) *Batcher {
	b := &Batcher{
		send:  send,
		from:  from,
		opts:  opts.withDefaults(),
		probe: newCompressProbe(opts.Compress),
		done:  make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	b.pumpCond = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// AttachTelemetry mirrors the batcher's fill, flush-reason, queue-depth and
// compression-ratio signals into reg.
func (b *Batcher) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	b.telFlushes = reg.Counter("batch.flushes")
	b.telFrames = reg.Counter("batch.frames")
	b.telFlushSize = reg.Counter("batch.flush.size")
	b.telFlushDrain = reg.Counter("batch.flush.drain")
	b.telFlushControl = reg.Counter("batch.flush.control")
	b.telQueue = reg.Gauge("batch.queue_depth")
	b.probe.gauge = reg.Gauge("batch.compression_ratio_milli")
	b.mu.Unlock()
}

// Batchable reports whether a message kind may ride inside a KindBatch.
// Every kind decides explicitly (wirekind): partials and watermarks are
// idempotent at the parent and may be coalesced; everything else is either
// control plane (ordering matters relative to the frames around it), raw
// events (not idempotent across a replayed reconnect), or a batch itself.
func Batchable(k Kind) bool {
	switch k {
	case KindPartial, KindWatermark:
		return true
	case KindHello, KindPlanState, KindEventBatch, KindResult,
		KindAddQuery, KindRemoveQuery, KindHeartbeat, KindGoodbye,
		KindPlanDelta, KindPlanDump, KindStatsDump, KindBatch:
		return false
	default:
		return false
	}
}

// cutThroughNanos is the send-time EWMA above which the batcher abandons the
// synchronous cut-through path and queues frames behind the pump instead. A
// LAN-speed send (tens of µs) stays cut-through; a throttled or congested
// link (≥ hundreds of µs per frame) batches.
const cutThroughNanos = 200_000

// observeSend folds one transmission's duration into the EWMA.
func (b *Batcher) observeSend(d time.Duration) {
	old := b.sendNanos.Load()
	b.sendNanos.Store(old - old/4 + int64(d)/4)
}

// Send transmits a batchable frame — synchronously (cut-through) while the
// link is fast, queued behind the pump (cloned, per the Conn contract) once
// it is not — or, for any other kind, flushes the open queue and transmits m
// synchronously. A transmission failure of an earlier asynchronous batch is
// sticky and surfaces here.
func (b *Batcher) Send(m *Message) error {
	if !Batchable(m.Kind) {
		b.telFlushControl.Inc()
		if err := b.Flush(); err != nil {
			return err
		}
		return b.send(m)
	}
	b.mu.Lock()
	if !b.opts.NoCutThrough && len(b.queue) == 0 && !b.inFlight && !b.closed && b.err == nil &&
		b.sendNanos.Load() < cutThroughNanos {
		// Cut-through: the link has been fast and nothing can be overtaken,
		// so transmit on this thread. The send is synchronous, so m needs no
		// clone — nothing is retained past the call (the Conn contract).
		// inFlight keeps the pump and Flush honest while the send is in
		// progress.
		b.inFlight = true
		b.mu.Unlock()
		start := time.Now()
		err := b.send(m)
		b.observeSend(time.Since(start))
		b.mu.Lock()
		b.inFlight = false
		if err != nil && b.err == nil {
			b.err = fmt.Errorf("message: batcher send: %w", err)
		}
		b.telFlushes.Inc()
		b.telFrames.Inc()
		b.telFlushDrain.Inc()
		if b.err != nil || b.closed || len(b.queue) > 0 {
			b.pumpCond.Signal() // frames queued behind this send (or shutdown)
		}
		b.cond.Broadcast()
		b.mu.Unlock()
		return err
	}
	// Queued (asynchronous) path: clone, because the caller may recycle m as
	// soon as Send returns while the frame is still waiting for the pump.
	c := *m
	if c.Partial != nil {
		c.Partial = c.Partial.Clone()
	}
	for len(b.queue) >= b.opts.Queue && b.err == nil && !b.closed {
		b.cond.Wait()
	}
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("message: send on closed batcher")
	}
	b.queue = append(b.queue, &c)
	b.telQueue.Set(int64(len(b.queue)))
	b.pumpCond.Signal()
	b.mu.Unlock()
	return nil
}

// Flush blocks until every queued frame has been transmitted (or the
// batcher failed), returning the sticky error state.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for (len(b.queue) > 0 || b.inFlight) && b.err == nil {
		b.cond.Wait()
	}
	return b.err
}

// Close flushes and stops the sender goroutine. Safe to call twice.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.cond.Broadcast()
		b.pumpCond.Broadcast()
	}
	b.mu.Unlock()
	<-b.done
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// run is the sender pump: one batch per iteration, sized by whatever
// accumulated while the previous transmission was in flight.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		b.mu.Lock()
		// Also wait out a cut-through transmission: collecting a batch while
		// one is on the wire could reorder frames from the same producer.
		for b.err == nil && (b.inFlight || (len(b.queue) == 0 && !b.closed)) {
			b.pumpCond.Wait()
		}
		if b.err != nil || len(b.queue) == 0 {
			b.mu.Unlock()
			return
		}
		n, bytes := 0, 0
		for n < len(b.queue) && n < b.opts.MaxFrames && (n == 0 || bytes < b.opts.MaxBytes) {
			bytes += estimateFrameSize(b.queue[n])
			n++
		}
		capped := n < len(b.queue)
		frames := make([]*Message, n)
		copy(frames, b.queue)
		rest := copy(b.queue, b.queue[n:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = b.queue[:rest]
		b.inFlight = true
		b.telQueue.Set(int64(rest))
		b.cond.Broadcast() // wake Send callers blocked on queue space
		b.mu.Unlock()

		var m *Message
		if len(frames) == 1 {
			// A lone frame travels unbatched, keeping the wire byte-identical
			// to the unbatched protocol when there is nothing to coalesce.
			m = frames[0]
		} else {
			m = &Message{Kind: KindBatch, From: b.from, Batch: &Batch{Frames: frames, probe: b.probe}}
		}
		start := time.Now()
		err := b.send(m)
		b.observeSend(time.Since(start))

		b.mu.Lock()
		b.inFlight = false
		if err != nil && b.err == nil {
			b.err = fmt.Errorf("message: batcher send: %w", err)
			b.queue = nil
		}
		b.telFlushes.Inc()
		b.telFrames.Add(uint64(len(frames)))
		if capped {
			b.telFlushSize.Inc()
		} else {
			b.telFlushDrain.Inc()
		}
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// BatchingConn wraps a Conn with a Batcher on the send side: partials and
// watermarks coalesce into KindBatch frames, everything else passes through
// synchronously (after a flush). The receive side is untouched — receivers
// unbatch where they dispatch (node handlers).
type BatchingConn struct {
	conn Conn
	b    *Batcher
}

// NewBatchingConn wraps conn. from stamps outgoing batches.
func NewBatchingConn(conn Conn, from uint32, opts BatcherOptions) *BatchingConn {
	return &BatchingConn{conn: conn, b: NewBatcher(conn.Send, from, opts)}
}

// Batcher exposes the wrapped batcher (telemetry attachment).
func (c *BatchingConn) Batcher() *Batcher { return c.b }

// Send implements Conn.
func (c *BatchingConn) Send(m *Message) error { return c.b.Send(m) }

// Recv implements Conn.
func (c *BatchingConn) Recv() (*Message, error) { return c.conn.Recv() }

// Close implements Conn: flushes queued frames, then closes the transport.
func (c *BatchingConn) Close() error {
	err := c.b.Close()
	if cerr := c.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// BytesSent implements Conn.
func (c *BatchingConn) BytesSent() uint64 { return c.conn.BytesSent() }

var _ Conn = (*BatchingConn)(nil)
