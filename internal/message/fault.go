package message

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Fault injection for the decentralized transport (§3.2 fault tolerance):
// FaultConn wraps a net.Conn so a test can sever, stall, or delay a link on
// command; FaultListener hands out fault-controllable accepted connections;
// FaultProxy splices a client to a fixed target through a FaultConn, which
// lets tests inject faults between nodes that own their listeners (the TCP
// servers in internal/node). None of this is used outside tests, but it
// lives here so any package deploying Conns can reuse it.

// ErrSevered is returned by FaultConn operations after Sever.
var ErrSevered = errors.New("message: link severed")

// FaultConn is a net.Conn whose delivery can be manipulated at runtime:
//
//   - SetDelay(d) sleeps d before every Read and Write (link latency);
//   - Stall() blocks all Reads and Writes until Resume (a live but frozen
//     link: bytes already accepted by the kernel still drain, nothing new
//     moves — heartbeats stop arriving without the socket closing);
//   - Sever() closes the underlying socket and fails every later operation
//     (abrupt node/link death).
type FaultConn struct {
	net.Conn
	mu      sync.Mutex
	delay   time.Duration
	stall   chan struct{} // non-nil while stalled; closed to release waiters
	severed bool
}

// NewFaultConn wraps an established connection.
func NewFaultConn(c net.Conn) *FaultConn { return &FaultConn{Conn: c} }

// SetDelay imposes a per-operation latency; zero removes it.
func (f *FaultConn) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// Stall freezes the link: Reads and Writes block until Resume or Sever.
func (f *FaultConn) Stall() {
	f.mu.Lock()
	if f.stall == nil && !f.severed {
		f.stall = make(chan struct{})
	}
	f.mu.Unlock()
}

// Resume releases a stalled link.
func (f *FaultConn) Resume() {
	f.mu.Lock()
	if f.stall != nil {
		close(f.stall)
		f.stall = nil
	}
	f.mu.Unlock()
}

// Sever closes the underlying connection and releases any stalled waiters;
// every subsequent operation fails.
func (f *FaultConn) Sever() {
	f.mu.Lock()
	f.severed = true
	if f.stall != nil {
		close(f.stall)
		f.stall = nil
	}
	f.mu.Unlock()
	f.Conn.Close()
}

// gate applies the current fault mode before an operation. Stall is a loop:
// a Resume immediately followed by another Stall re-blocks the waiter.
func (f *FaultConn) gate() error {
	for {
		f.mu.Lock()
		if f.severed {
			f.mu.Unlock()
			return ErrSevered
		}
		d, ch := f.delay, f.stall
		f.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		if ch == nil {
			return nil
		}
		<-ch
	}
}

// Read implements net.Conn.
func (f *FaultConn) Read(p []byte) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.Conn.Read(p)
}

// Write implements net.Conn.
func (f *FaultConn) Write(p []byte) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.Conn.Write(p)
}

// FaultListener wraps a net.Listener: every accepted connection comes back
// as a FaultConn registered with the listener, and new connections can be
// rejected wholesale (a node that is up but refusing service).
type FaultListener struct {
	net.Listener
	mu     sync.Mutex
	conns  []*FaultConn
	reject bool
}

// NewFaultListener wraps an existing listener.
func NewFaultListener(l net.Listener) *FaultListener { return &FaultListener{Listener: l} }

// Accept implements net.Listener. While rejection is on, inbound
// connections are closed immediately and Accept keeps waiting.
func (l *FaultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.reject {
			l.mu.Unlock()
			c.Close()
			continue
		}
		fc := NewFaultConn(c)
		l.conns = append(l.conns, fc)
		l.mu.Unlock()
		return fc, nil
	}
}

// RejectNew toggles whether inbound connections are refused.
func (l *FaultListener) RejectNew(on bool) {
	l.mu.Lock()
	l.reject = on
	l.mu.Unlock()
}

// Conns returns every connection accepted so far, oldest first.
func (l *FaultListener) Conns() []*FaultConn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*FaultConn(nil), l.conns...)
}

// FaultProxy is a byte-level TCP proxy to a fixed target. Each inbound
// connection becomes a FaultLink whose faults apply to both directions, so
// tests can place it between a child and its parent without touching either
// node's listener. Codec-agnostic: it splices raw bytes.
type FaultProxy struct {
	l      net.Listener
	target string
	mu     sync.Mutex
	links  []*FaultLink
	reject bool
	closed bool
}

// FaultLink is one proxied connection pair. Faults are applied on the
// client-facing side, gating both the upstream and downstream byte flow.
type FaultLink struct {
	*FaultConn          // client side; Sever/Stall/Resume/SetDelay act here
	server     net.Conn // target side
	once       sync.Once
}

// close tears down both halves of the link.
func (ln *FaultLink) close() {
	ln.once.Do(func() {
		ln.FaultConn.Conn.Close()
		ln.server.Close()
	})
}

// Sever cuts the link abruptly: both sides observe a closed connection.
func (ln *FaultLink) Sever() {
	ln.FaultConn.Sever()
	ln.close()
}

// NewFaultProxy listens on 127.0.0.1:0 and forwards every connection to
// target, returning the proxy once it is accepting.
func NewFaultProxy(target string) (*FaultProxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{l: l, target: target}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address; point children here instead of at the
// real parent.
func (p *FaultProxy) Addr() string { return p.l.Addr().String() }

// RejectNew toggles whether new inbound connections are refused — combined
// with Sever or Stall on existing links this makes reconnection attempts
// fail, simulating a dead parent or a partitioned child.
func (p *FaultProxy) RejectNew(on bool) {
	p.mu.Lock()
	p.reject = on
	p.mu.Unlock()
}

// Links returns every proxied connection so far, oldest first.
func (p *FaultProxy) Links() []*FaultLink {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*FaultLink(nil), p.links...)
}

// StallAll freezes every live link (see FaultConn.Stall).
func (p *FaultProxy) StallAll() {
	for _, ln := range p.Links() {
		ln.Stall()
	}
}

// ResumeAll releases every stalled link.
func (p *FaultProxy) ResumeAll() {
	for _, ln := range p.Links() {
		ln.Resume()
	}
}

// SeverAll abruptly cuts every live link; new connections still proxy unless
// RejectNew is on.
func (p *FaultProxy) SeverAll() {
	for _, ln := range p.Links() {
		ln.Sever()
	}
}

// Close stops accepting and tears down every link.
func (p *FaultProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	links := append([]*FaultLink(nil), p.links...)
	p.mu.Unlock()
	err := p.l.Close()
	for _, ln := range links {
		ln.close()
	}
	return err
}

func (p *FaultProxy) acceptLoop() {
	for {
		c, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		reject := p.reject || p.closed
		p.mu.Unlock()
		if reject {
			c.Close()
			continue
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		ln := &FaultLink{FaultConn: NewFaultConn(c), server: server}
		p.mu.Lock()
		p.links = append(p.links, ln)
		p.mu.Unlock()
		go splice(server, ln.FaultConn, ln)
		go splice(ln.FaultConn, server, ln)
	}
}

// splice copies one direction until it fails, then tears the link down (the
// protocol treats a half-dead link as dead, matching §3.2 node loss).
func splice(dst io.Writer, src io.Reader, ln *FaultLink) {
	_, _ = io.Copy(dst, src)
	ln.close()
}
