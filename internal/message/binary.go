package message

import (
	"encoding/binary"
	"fmt"
	"math"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

// Binary is the default codec: little-endian fixed-width fields, the layout
// all systems except Disco use in the paper's network experiments.
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// Append implements Codec.
func (Binary) Append(buf []byte, m *Message) ([]byte, error) {
	buf = append(buf, byte(m.Kind))
	buf = appendU32(buf, m.From)
	switch m.Kind {
	case KindHello:
		buf = appendU64(buf, m.Epoch)
	case KindGoodbye, KindPlanDump:
	case KindHeartbeat:
		if m.Load != nil {
			buf = append(buf, 1)
			buf = telemetry.AppendLoadDigest(buf, m.Load)
		} else {
			buf = append(buf, 0)
		}
	case KindStatsDump:
		if m.Stats != nil {
			buf = append(buf, 1)
			buf = telemetry.AppendSnapshot(buf, m.Stats)
		} else {
			buf = append(buf, 0)
		}
	case KindEventBatch:
		buf = event.AppendBatch(buf, m.Events)
	case KindPartial:
		buf = appendPartial(buf, m.Partial)
	case KindWatermark:
		buf = appendU64(buf, uint64(m.Watermark))
	case KindBatch:
		var err error
		if buf, err = appendBatchBody(buf, m.Batch); err != nil {
			return nil, err
		}
	case KindAddQuery:
		buf = appendU32(buf, uint32(len(m.Queries)))
		for _, q := range m.Queries {
			buf = appendQuery(buf, q)
		}
	case KindRemoveQuery:
		buf = appendU64(buf, m.QueryID)
		buf = appendU64(buf, uint64(m.Watermark))
	case KindResult:
		buf = appendResult(buf, m.Result)
	case KindPlanState:
		buf = plan.AppendPlan(buf, m.Plan)
	case KindPlanDelta:
		buf = appendU32(buf, uint32(len(m.Deltas)))
		for _, d := range m.Deltas {
			buf = plan.AppendDelta(buf, d)
		}
	default:
		return nil, fmt.Errorf("message: cannot encode kind %d", m.Kind)
	}
	return buf, nil
}

// Decode implements Codec.
func (Binary) Decode(buf []byte) (*Message, error) {
	r := reader{buf: buf}
	m := &Message{}
	m.Kind = Kind(r.u8())
	m.From = r.u32()
	switch m.Kind {
	case KindHello:
		m.Epoch = r.u64()
	case KindGoodbye, KindPlanDump:
	case KindHeartbeat:
		if r.u8() == 1 && r.err == nil {
			d, rest, err := telemetry.DecodeLoadDigest(r.buf)
			if err != nil {
				return nil, err
			}
			m.Load, r.buf = d, rest
		}
	case KindStatsDump:
		if r.u8() == 1 && r.err == nil {
			s, rest, err := telemetry.DecodeSnapshot(r.buf)
			if err != nil {
				return nil, err
			}
			m.Stats, r.buf = s, rest
		}
	case KindEventBatch:
		var err error
		m.Events, _, err = event.DecodeBatch(r.buf, nil)
		if err != nil {
			return nil, err
		}
		r.buf = nil
	case KindPartial:
		m.Partial = r.partial()
	case KindWatermark:
		m.Watermark = int64(r.u64())
	case KindBatch:
		if r.err == nil {
			b, err := decodeBatchBody(r.buf, m.From)
			if err != nil {
				return nil, err
			}
			m.Batch, r.buf = b, nil
		}
	case KindAddQuery:
		n := r.u32()
		for i := uint32(0); i < n && r.err == nil; i++ {
			m.Queries = append(m.Queries, r.query())
		}
	case KindRemoveQuery:
		m.QueryID = r.u64()
		m.Watermark = int64(r.u64())
	case KindResult:
		m.Result = r.result()
	case KindPlanState:
		if r.err == nil {
			p, rest, err := plan.DecodePlan(r.buf)
			if err != nil {
				return nil, err
			}
			m.Plan, r.buf = p, rest
		}
	case KindPlanDelta:
		n := r.u32()
		for i := uint32(0); i < n && r.err == nil; i++ {
			d, rest, err := plan.DecodeDelta(r.buf)
			if err != nil {
				return nil, err
			}
			m.Deltas = append(m.Deltas, d)
			r.buf = rest
		}
	default:
		return nil, fmt.Errorf("message: cannot decode kind %d", m.Kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

func appendU32(buf []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(buf, t[:]...)
}

func appendU64(buf []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(buf, t[:]...)
}

func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}

func appendPartial(buf []byte, p *core.SlicePartial) []byte {
	// A partial reaching the encoder after being recycled is reading
	// pool-owned storage (debug builds panic here with its slice id).
	invariant.AssertPartialLive(p)
	buf = appendU32(buf, p.Group)
	buf = appendU64(buf, p.ID)
	buf = appendU64(buf, uint64(p.Start))
	buf = appendU64(buf, uint64(p.End))
	buf = appendU64(buf, uint64(p.LastEvent))
	buf = appendU64(buf, uint64(p.Ingested))
	buf = appendU32(buf, uint32(len(p.Aggs)))
	for i := range p.Aggs {
		buf = operator.AppendAgg(buf, &p.Aggs[i])
	}
	buf = appendU32(buf, uint32(len(p.EPs)))
	for _, ep := range p.EPs {
		buf = appendU32(buf, uint32(ep.QueryIdx))
		buf = appendU64(buf, uint64(ep.Start))
		buf = appendU64(buf, uint64(ep.End))
		buf = appendU64(buf, uint64(ep.GapStart))
	}
	return buf
}

func appendQuery(buf []byte, q query.Query) []byte {
	buf = appendU64(buf, q.ID)
	buf = appendU32(buf, q.Key)
	buf = appendF64(buf, q.Pred.Min)
	buf = appendF64(buf, q.Pred.Max)
	buf = append(buf, byte(q.Type), byte(q.Measure))
	buf = appendU64(buf, uint64(q.Length))
	buf = appendU64(buf, uint64(q.Slide))
	buf = appendU64(buf, uint64(q.Gap))
	buf = appendU32(buf, uint32(len(q.Funcs)))
	for _, f := range q.Funcs {
		buf = append(buf, byte(f.Func))
		buf = appendF64(buf, f.Arg)
	}
	return buf
}

func appendResult(buf []byte, r *core.Result) []byte {
	buf = appendU64(buf, r.QueryID)
	buf = appendU32(buf, r.Key)
	buf = appendU64(buf, uint64(r.Start))
	buf = appendU64(buf, uint64(r.End))
	buf = appendU64(buf, uint64(r.Count))
	buf = appendU32(buf, uint32(len(r.Values)))
	for _, v := range r.Values {
		buf = append(buf, byte(v.Spec.Func))
		buf = appendF64(buf, v.Spec.Arg)
		buf = appendF64(buf, v.Value)
		if v.OK {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// reader is a cursor over an encoded message with sticky error handling.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("message: truncated: need %d bytes, have %d", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) partial() *core.SlicePartial {
	p := &core.SlicePartial{
		Group:     r.u32(),
		ID:        r.u64(),
		Start:     int64(r.u64()),
		End:       int64(r.u64()),
		LastEvent: int64(r.u64()),
		Ingested:  int64(r.u64()),
	}
	nAggs := r.u32()
	for i := uint32(0); i < nAggs && r.err == nil; i++ {
		var a operator.Agg
		rest, err := operator.DecodeAgg(r.buf, &a)
		if err != nil {
			r.err = err
			return nil
		}
		r.buf = rest
		p.Aggs = append(p.Aggs, a)
	}
	nEPs := r.u32()
	for i := uint32(0); i < nEPs && r.err == nil; i++ {
		p.EPs = append(p.EPs, core.EP{
			QueryIdx: int32(r.u32()),
			Start:    int64(r.u64()),
			End:      int64(r.u64()),
			GapStart: int64(r.u64()),
		})
	}
	if r.err != nil {
		return nil
	}
	return p
}

func (r *reader) query() query.Query {
	q := query.Query{
		ID:  r.u64(),
		Key: r.u32(),
	}
	q.Pred.Min = r.f64()
	q.Pred.Max = r.f64()
	q.Type = query.WindowType(r.u8())
	q.Measure = query.Measure(r.u8())
	q.Length = int64(r.u64())
	q.Slide = int64(r.u64())
	q.Gap = int64(r.u64())
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		f := operator.Func(r.u8())
		arg := r.f64()
		q.Funcs = append(q.Funcs, operator.FuncSpec{Func: f, Arg: arg})
	}
	return q
}

func (r *reader) result() *core.Result {
	res := &core.Result{
		QueryID: r.u64(),
		Key:     r.u32(),
		Start:   int64(r.u64()),
		End:     int64(r.u64()),
		Count:   int64(r.u64()),
	}
	n := r.u32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var v core.FuncValue
		v.Spec.Func = operator.Func(r.u8())
		v.Spec.Arg = r.f64()
		v.Value = r.f64()
		v.OK = r.u8() == 1
		res.Values = append(res.Values, v)
	}
	if r.err != nil {
		return nil
	}
	return res
}
