package message

import (
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/operator"
	"desis/internal/plan"
	"desis/internal/query"
	"desis/internal/telemetry"
)

func samplePartial() *core.SlicePartial {
	a := operator.NewAgg(operator.OpSum | operator.OpCount | operator.OpNDSort)
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	a.Finish()
	b := operator.NewAgg(operator.OpSum | operator.OpCount | operator.OpNDSort)
	b.Finish()
	return &core.SlicePartial{
		Group: 2, ID: 77, Start: 1000, End: 2000, LastEvent: 1960, Ingested: 3,
		Aggs: []operator.Agg{a, b},
		EPs: []core.EP{
			{QueryIdx: 1, Start: 500, End: 2000, GapStart: 1960},
		},
	}
}

func sampleMessages() []*Message {
	return []*Message{
		{Kind: KindHello, From: 3},
		{Kind: KindHello, From: 7, Epoch: 42},
		{Kind: KindHello, From: 8, Epoch: NoEpoch},
		{Kind: KindHeartbeat, From: 9},
		{Kind: KindHeartbeat, From: 9, Load: &telemetry.LoadDigest{
			Epoch: 4, Watermark: 98_000, Events: 120_000, Slices: 98, Windows: 42,
			Reconnects: 1, ReplayLen: 7,
		}},
		{Kind: KindWatermark, From: 1, Watermark: 123456},
		{Kind: KindEventBatch, From: 4, Events: []event.Event{
			{Time: 1, Key: 2, Value: 3.5},
			{Time: 2, Key: 0, Marker: event.MarkerBoundary, Value: 0},
		}},
		{Kind: KindPartial, From: 5, Partial: samplePartial()},
	}
}

func samplePlan() *plan.Plan {
	qs := []query.Query{
		query.MustParse("tumbling(1s) average key=3 value>=80"),
		query.MustParse("sliding(10s,2s) sum,quantile(0.9) key=1"),
		query.MustParse("session(5s) median key=0"),
	}
	for i := range qs {
		qs[i].ID = uint64(i + 1)
	}
	p, err := plan.New(qs, plan.Options{Decentralized: true})
	if err != nil {
		panic(err)
	}
	// A removal tombstones a member, exercising the wire fields that are not
	// derivable from the live query set.
	if err := p.Apply(p.RemoveDelta(3)); err != nil {
		panic(err)
	}
	return p
}

func sampleSnapshot() *telemetry.Snapshot {
	s := telemetry.NewSnapshot()
	s.Counters["group.1.events"] = 120_000
	s.Counters["group.1.windows"] = 42
	s.Counters["reorder.dropped"] = 3
	s.Gauges["reorder.pending"] = -2 // negative exercises the varint path
	h := telemetry.NewRegistry().Histogram("engine.assembly_latency")
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s.Hists["engine.assembly_latency"] = h.Export()
	return s
}

func controlMessages() []*Message {
	p := samplePlan()
	addQ := query.MustParse("userdefined max key=7")
	addQ.ID = 4
	return []*Message{
		{Kind: KindStatsDump, From: 2},
		{Kind: KindStatsDump, From: 0, Stats: sampleSnapshot()},
		{Kind: KindPlanState, From: 0, Plan: p},
		{Kind: KindPlanDelta, From: 0, Deltas: []plan.Delta{
			p.AddDelta(addQ),
			{Kind: plan.DeltaRemoveQuery, Epoch: 3, QueryID: 1},
			{Kind: plan.DeltaInstantiate, Epoch: 4, QueryID: 9, Key: 12},
		}},
		{Kind: KindPlanDump, From: 0},
		{Kind: KindAddQuery, From: 2, Queries: []query.Query{query.MustParse("userdefined max key=7")}},
		{Kind: KindRemoveQuery, From: 2, QueryID: 42, Watermark: 99},
		{Kind: KindResult, From: 0, Result: &core.Result{
			QueryID: 7, Start: 0, End: 1000, Count: 12,
			Values: []core.FuncValue{
				{Spec: operator.FuncSpec{Func: operator.Average}, Value: 3.25, OK: true},
				{Spec: operator.FuncSpec{Func: operator.Quantile, Arg: 0.5}, OK: false},
			},
		}},
	}
}

func checkRoundTrip(t *testing.T, c Codec, msgs []*Message) {
	t.Helper()
	for _, m := range msgs {
		buf, err := c.Append(nil, m)
		if err != nil {
			t.Fatalf("%s: Append(kind %d): %v", c.Name(), m.Kind, err)
		}
		got, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("%s: Decode(kind %d): %v", c.Name(), m.Kind, err)
		}
		if !messagesEqual(got, m) {
			t.Errorf("%s kind %d: round trip mismatch:\n got %+v\nwant %+v", c.Name(), m.Kind, got, m)
		}
	}
}

// messagesEqual compares messages, treating nil and empty slices alike.
func messagesEqual(a, b *Message) bool {
	if a.Kind != b.Kind || a.From != b.From || a.Watermark != b.Watermark || a.QueryID != b.QueryID {
		return false
	}
	if a.Epoch != b.Epoch {
		return false
	}
	if len(a.Deltas) != len(b.Deltas) {
		return false
	}
	for i := range a.Deltas {
		if !deltasEqual(a.Deltas[i], b.Deltas[i]) {
			return false
		}
	}
	if (a.Plan == nil) != (b.Plan == nil) {
		return false
	}
	if a.Plan != nil && !plansEqual(a.Plan, b.Plan) {
		return false
	}
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	if (a.Partial == nil) != (b.Partial == nil) {
		return false
	}
	if a.Partial != nil && !partialsEqual(a.Partial, b.Partial) {
		return false
	}
	if len(a.Queries) != len(b.Queries) {
		return false
	}
	for i := range a.Queries {
		if a.Queries[i].String() != b.Queries[i].String() || a.Queries[i].ID != b.Queries[i].ID {
			return false
		}
	}
	if (a.Result == nil) != (b.Result == nil) {
		return false
	}
	if a.Result != nil && !reflect.DeepEqual(a.Result, b.Result) {
		return false
	}
	if (a.Stats == nil) != (b.Stats == nil) {
		return false
	}
	if a.Stats != nil && !reflect.DeepEqual(a.Stats, b.Stats) {
		return false
	}
	if (a.Load == nil) != (b.Load == nil) {
		return false
	}
	if a.Load != nil && *a.Load != *b.Load {
		return false
	}
	if (a.Batch == nil) != (b.Batch == nil) {
		return false
	}
	if a.Batch != nil {
		if len(a.Batch.Frames) != len(b.Batch.Frames) {
			return false
		}
		for i := range a.Batch.Frames {
			if !messagesEqual(a.Batch.Frames[i], b.Batch.Frames[i]) {
				return false
			}
		}
	}
	return true
}

func queriesEqual(a, b query.Query) bool {
	return a.ID == b.ID && a.AnyKey == b.AnyKey && a.String() == b.String()
}

func deltasEqual(a, b plan.Delta) bool {
	return a.Kind == b.Kind && a.Epoch == b.Epoch && a.QueryID == b.QueryID &&
		a.Key == b.Key && queriesEqual(a.Query, b.Query)
}

func plansEqual(a, b *plan.Plan) bool {
	if a.Epoch != b.Epoch || a.Decentralized != b.Decentralized || a.Dedup != b.Dedup ||
		a.Shards != b.Shards || a.Shard != b.Shard {
		return false
	}
	if len(a.Groups) != len(b.Groups) || len(a.Templates) != len(b.Templates) || len(a.Instances) != len(b.Instances) {
		return false
	}
	for i := range a.Groups {
		g, h := a.Groups[i], b.Groups[i]
		if g.ID != h.ID || g.Key != h.Key || g.Placement != h.Placement || g.Dedup != h.Dedup ||
			g.Ops != h.Ops || g.LogicalOps != h.LogicalOps {
			return false
		}
		if len(g.Contexts) != len(h.Contexts) || len(g.Queries) != len(h.Queries) {
			return false
		}
		for j := range g.Contexts {
			if g.Contexts[j] != h.Contexts[j] {
				return false
			}
		}
		for j := range g.Queries {
			if g.Queries[j].Ctx != h.Queries[j].Ctx || g.Queries[j].Removed != h.Queries[j].Removed ||
				!queriesEqual(g.Queries[j].Query, h.Queries[j].Query) {
				return false
			}
		}
	}
	for i := range a.Templates {
		if !queriesEqual(a.Templates[i], b.Templates[i]) {
			return false
		}
	}
	for i := range a.Instances {
		if a.Instances[i] != b.Instances[i] {
			return false
		}
	}
	return true
}

func partialsEqual(a, b *core.SlicePartial) bool {
	if a.Group != b.Group || a.ID != b.ID || a.Start != b.Start || a.End != b.End ||
		a.LastEvent != b.LastEvent || a.Ingested != b.Ingested {
		return false
	}
	if len(a.Aggs) != len(b.Aggs) || len(a.EPs) != len(b.EPs) {
		return false
	}
	for i := range a.Aggs {
		x, y := &a.Aggs[i], &b.Aggs[i]
		if x.Ops != y.Ops || x.CountV != y.CountV || x.SumV != y.SumV ||
			x.ProdV != y.ProdV || x.MinV != y.MinV || x.MaxV != y.MaxV {
			return false
		}
		if len(x.Values) != len(y.Values) {
			return false
		}
		for j := range x.Values {
			if x.Values[j] != y.Values[j] {
				return false
			}
		}
	}
	for i := range a.EPs {
		if a.EPs[i] != b.EPs[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	checkRoundTrip(t, Binary{}, sampleMessages())
	checkRoundTrip(t, Binary{}, controlMessages())
}

func TestTextRoundTrip(t *testing.T) {
	checkRoundTrip(t, Text{}, sampleMessages())
}

func TestTextLargerThanBinary(t *testing.T) {
	// The premise of Figure 11b: string encoding costs more bytes.
	var batch []event.Event
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		batch = append(batch, event.Event{Time: int64(1700000000000 + i), Key: uint32(i % 10), Value: rng.Float64() * 1000})
	}
	m := &Message{Kind: KindEventBatch, From: 1, Events: batch}
	bin, err := Binary{}.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := Text{}.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(txt) <= len(bin) {
		t.Errorf("text %d bytes <= binary %d bytes", len(txt), len(bin))
	}
}

func TestBinaryDecodeTruncated(t *testing.T) {
	for _, m := range append(sampleMessages(), controlMessages()...) {
		buf, err := Binary{}.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(buf); i++ {
			if _, err := (Binary{}).Decode(buf[:i]); err == nil && i < len(buf) {
				// Some prefixes decode cleanly (e.g. empty event batch is a
				// valid shorter message only if the count matches); require
				// error for the strictly-truncated header cases.
				if i < 5 {
					t.Fatalf("kind %d: decode of %d/%d bytes succeeded", m.Kind, i, len(buf))
				}
			}
		}
	}
}

func TestPipeSendRecv(t *testing.T) {
	a, b := NewPipe(Binary{}, 4)
	want := sampleMessages()
	go func() {
		for _, m := range want {
			if err := a.Send(m); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		a.Close()
	}()
	for _, w := range want {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !messagesEqual(got, w) {
			t.Fatalf("got %+v, want %+v", got, w)
		}
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("Recv after close = %v, want EOF", err)
	}
	if a.BytesSent() == 0 {
		t.Error("BytesSent = 0")
	}
}

func TestPipeSendAfterClose(t *testing.T) {
	a, _ := NewPipe(Binary{}, 1)
	a.Close()
	if err := a.Send(&Message{Kind: KindHello}); err == nil {
		t.Error("Send on closed pipe succeeded")
	}
}

func TestThrottleLimitsRate(t *testing.T) {
	th := NewThrottle(1 << 20) // 1 MiB/s
	th.Take(1 << 20)           // drain the burst
	start := time.Now()
	th.Take(200 << 10) // 200 KiB beyond the bucket -> ~200 ms
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("throttled take finished in %v, want >= 100ms", d)
	}
}

func TestTCPConn(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Binary{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer c.Close()
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			// Echo back.
			if err := c.Send(m); err != nil {
				serverErr = err
				return
			}
		}
	}()

	c, err := Dial(l.Addr(), Binary{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sampleMessages() {
		if err := c.Send(w); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !messagesEqual(got, w) {
			t.Fatalf("echo mismatch: got %+v, want %+v", got, w)
		}
	}
	if c.BytesSent() == 0 {
		t.Error("BytesSent = 0")
	}
	c.Close()
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}
