package message

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"desis/internal/core"
	"desis/internal/invariant"
	"desis/internal/operator"
)

// Batch is the payload of KindBatch: an ordered run of KindPartial and
// KindWatermark frames from one sender, encoded as a single wire frame.
//
// The body is columnar rather than a concatenation of per-frame encodings:
// slice ids and timestamps are delta-varint streams, group ids are
// dictionary-coded, and the operator state of all partials is laid out as
// contiguous per-operator columns (all counts, then all sums, ...). Values
// of the same column are near-identical across consecutive slices of a
// stream, so the deltas are tiny and the optional flate stage sees long
// runs of similar bytes — this is what lets a throttled uplink ship events
// instead of frame headers (§6.5.2, Figure 13b).
//
// Within a batch the producer's frame order is preserved, and producers
// emit a slice partial strictly before any watermark covering it, so
// delivering the frames of a batch in order is indistinguishable from
// having sent them unbatched.
type Batch struct {
	// Frames are the batched messages, each KindPartial or KindWatermark.
	// Per-frame From fields are not encoded; decoding stamps every frame
	// with the batch's From.
	Frames []*Message
	// Compress asks the encoder to deflate the body when it helps (the
	// smaller of raw/deflated is sent; the choice is flagged on the wire).
	// Decoding does not reconstruct this hint.
	Compress bool
	// probe, when attached by a Batcher, gates compression adaptively with
	// a measured per-link ratio probe instead of the static Compress flag.
	probe *compressProbe
}

// batch body flags.
const batchFlagDeflate = 0x01

// maxBatchPayload bounds the decoded (decompressed) body so hostile frames
// cannot balloon memory; it matches the TCP transport's frame cap.
const maxBatchPayload = 64 << 20

// minDeflateSize is the body size below which compression is never
// attempted — tiny batches cannot amortize the flate header.
const minDeflateSize = 256

// batchScratch holds the encoder's reusable state: the staging payload,
// the partial/dictionary work lists, and the deflate machinery (a
// flate.Writer is ~600 KiB of window state — reallocating it per batch
// dwarfed the batch itself). Scratches recycle through a sync.Pool rather
// than living on the Batcher because replayed KindBatch frames are
// re-encoded by whichever goroutine is reconnecting, concurrently with the
// pump encoding fresh batches.
type batchScratch struct {
	payload  []byte
	partials []*core.SlicePartial
	dict     []uint32
	comp     bytes.Buffer
	fw       *flate.Writer
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// appendBatchBody appends the columnar encoding of b (flags byte plus
// payload) shared by the Binary and Compact codecs. Steady-state it
// allocates nothing: all staging space comes from the scratch pool.
//
//desis:hotpath
func appendBatchBody(buf []byte, b *Batch) ([]byte, error) {
	s := scratchPool.Get().(*batchScratch)
	payload, err := appendBatchPayload(s.payload[:0], s, b)
	s.payload = payload // keep the grown buffer for the next batch
	if err != nil {
		scratchPool.Put(s)
		return nil, err
	}
	try := b.Compress
	if b.probe != nil {
		try = b.probe.shouldTry()
	}
	if try && len(payload) >= minDeflateSize {
		comp := s.deflate(payload)
		if b.probe != nil {
			b.probe.observe(len(payload), len(comp))
		}
		// Keep the compressed body only when it clearly wins; a marginal
		// saving is not worth the receiver's inflate pass.
		if len(comp) < len(payload)*15/16 {
			buf = append(buf, batchFlagDeflate)
			buf = append(buf, comp...)
			scratchPool.Put(s)
			return buf, nil
		}
	}
	buf = append(buf, 0)
	buf = append(buf, payload...)
	scratchPool.Put(s)
	return buf, nil
}

// decodeBatchBody parses a columnar batch body (flags byte plus payload),
// stamping every decoded frame with the batch sender from.
func decodeBatchBody(buf []byte, from uint32) (*Batch, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("message: empty batch body")
	}
	flags, payload := buf[0], buf[1:]
	if flags&^batchFlagDeflate != 0 {
		return nil, fmt.Errorf("message: unknown batch flags %#x", flags)
	}
	if flags&batchFlagDeflate != 0 {
		var err error
		payload, err = inflateBytes(payload)
		if err != nil {
			return nil, fmt.Errorf("message: bad batch compression: %w", err)
		}
	}
	return decodeBatchPayload(payload, from)
}

// deflate compresses p into the scratch's reused buffer and window state;
// the returned slice is valid until the scratch's next deflate.
//
//desis:hotpath
func (s *batchScratch) deflate(p []byte) []byte {
	s.comp.Reset()
	if s.fw == nil {
		s.fw, _ = flate.NewWriter(&s.comp, flate.BestSpeed)
	} else {
		s.fw.Reset(&s.comp)
	}
	s.fw.Write(p)
	s.fw.Close()
	return s.comp.Bytes()
}

func inflateBytes(p []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(p))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, maxBatchPayload+1))
	if err != nil {
		return nil, err
	}
	if len(out) > maxBatchPayload {
		return nil, fmt.Errorf("inflated body exceeds %d bytes", maxBatchPayload)
	}
	return out, nil
}

// appendBatchPayload writes the uncompressed columnar payload:
//
//	uvarint nFrames
//	kind bitmap, ceil(n/8) bytes — bit i set: frame i is a watermark
//	watermark column: varint deltas between consecutive watermark values
//	partial columns, over the partial frames in order:
//	  group dictionary: uvarint nGroups, then the group ids (uvarint)
//	  per-partial dictionary index (uvarint)
//	  slice id column (varint delta)
//	  Start column (varint delta), End-Start, LastEvent-Start, Ingested
//	  agg count per partial (uvarint), then the ops byte of every agg
//	  per-operator state columns: counts, sums, products, min/max pairs,
//	  retained-value runs — each contiguous over all aggs that carry the op
//	  EP count per partial (uvarint), then the EP field columns
//
//desis:hotpath
func appendBatchPayload(buf []byte, s *batchScratch, b *Batch) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(b.Frames)))
	partials := s.partials[:0]
	// The kind bitmap is built in place inside buf: zeroed bytes first, then
	// bits set as the frames classify, so no staging slice is needed.
	bitmapOff := len(buf)
	for i := 0; i < (len(b.Frames)+7)/8; i++ {
		buf = append(buf, 0)
	}
	for i, f := range b.Frames {
		switch f.Kind {
		case KindPartial:
			if f.Partial == nil {
				s.stashPartials(partials)
				//lint:ignore hotalloc cold path: reachable only on a local invariant violation, after which the frame is dropped
				return nil, fmt.Errorf("message: batch frame %d: partial frame without payload", i)
			}
			invariant.AssertPartialLive(f.Partial)
			partials = append(partials, f.Partial)
		case KindWatermark:
			buf[bitmapOff+i/8] |= 1 << (i % 8)
		default:
			s.stashPartials(partials)
			//lint:ignore hotalloc cold path: the Batcher only enqueues Batchable kinds, so this is a local invariant violation
			return nil, fmt.Errorf("message: batch frame %d: kind %d is not batchable", i, f.Kind)
		}
	}

	// Watermark column.
	prevW := int64(0)
	for _, f := range b.Frames {
		if f.Kind == KindWatermark {
			buf = binary.AppendVarint(buf, f.Watermark-prevW)
			prevW = f.Watermark
		}
	}

	if len(partials) == 0 {
		s.stashPartials(partials)
		return buf, nil
	}

	// Group dictionary: first-appearance order, so the common one-group
	// stream pays one dictionary entry and an all-zero index column. A
	// linear scan replaces the old map: batches carry a handful of groups,
	// and the scan keeps the dictionary allocation-free.
	dict := s.dict[:0]
	for _, p := range partials {
		if dictFind(dict, p.Group) < 0 {
			dict = append(dict, p.Group)
		}
	}
	s.dict = dict // dictionary is complete; keep the grown slice
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, g := range dict {
		buf = binary.AppendUvarint(buf, uint64(g))
	}
	for _, p := range partials {
		buf = binary.AppendUvarint(buf, uint64(dictFind(dict, p.Group)))
	}

	// Slice id and time columns, delta-coded against the previous partial.
	prev := int64(0)
	for _, p := range partials {
		buf = binary.AppendVarint(buf, int64(p.ID)-prev)
		prev = int64(p.ID)
	}
	prev = 0
	for _, p := range partials {
		buf = binary.AppendVarint(buf, p.Start-prev)
		prev = p.Start
	}
	for _, p := range partials {
		buf = binary.AppendVarint(buf, p.End-p.Start)
	}
	for _, p := range partials {
		buf = binary.AppendVarint(buf, p.LastEvent-p.Start)
	}
	for _, p := range partials {
		buf = binary.AppendVarint(buf, p.Ingested)
	}

	// Aggregate columns: the ops bytes first, then one contiguous column
	// per operator over every agg (in partial order) that carries it.
	for _, p := range partials {
		buf = binary.AppendUvarint(buf, uint64(len(p.Aggs)))
	}
	for _, p := range partials {
		for i := range p.Aggs {
			buf = append(buf, byte(p.Aggs[i].Ops))
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpCount != 0 {
				buf = binary.AppendVarint(buf, p.Aggs[i].CountV)
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpSum != 0 {
				buf = appendF64(buf, p.Aggs[i].SumV)
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpMult != 0 {
				buf = appendF64(buf, p.Aggs[i].ProdV)
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpDSort != 0 {
				buf = appendF64(buf, p.Aggs[i].MinV)
				buf = appendF64(buf, p.Aggs[i].MaxV)
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpNDSort != 0 {
				buf = binary.AppendUvarint(buf, uint64(len(p.Aggs[i].Values)))
				for _, v := range p.Aggs[i].Values {
					buf = appendF64(buf, v)
				}
			}
		}
	}

	// EP columns.
	for _, p := range partials {
		buf = binary.AppendUvarint(buf, uint64(len(p.EPs)))
	}
	for _, p := range partials {
		for _, ep := range p.EPs {
			buf = binary.AppendUvarint(buf, uint64(ep.QueryIdx))
		}
	}
	for _, p := range partials {
		for _, ep := range p.EPs {
			buf = binary.AppendVarint(buf, ep.Start)
		}
	}
	for _, p := range partials {
		for _, ep := range p.EPs {
			buf = binary.AppendVarint(buf, ep.End-ep.Start)
		}
	}
	for _, p := range partials {
		for _, ep := range p.EPs {
			buf = binary.AppendVarint(buf, ep.GapStart)
		}
	}
	s.stashPartials(partials)
	return buf, nil
}

// stashPartials zeroes and stores back the partial work list so a pooled
// scratch does not pin a batch's worth of partials between batches.
//
//desis:hotpath
func (s *batchScratch) stashPartials(partials []*core.SlicePartial) {
	clear(partials)
	s.partials = partials[:0]
}

// dictFind returns the index of g in dict, or -1. Batches carry a handful
// of groups at most, so a linear scan beats a map and allocates nothing.
func dictFind(dict []uint32, g uint32) int {
	for i, d := range dict {
		if d == g {
			return i
		}
	}
	return -1
}

func decodeBatchPayload(payload []byte, from uint32) (*Batch, error) {
	r := varReader{buf: payload}
	n := int(r.uvarint())
	// Every frame owns at least one bitmap bit, so a count the buffer
	// cannot have carried is hostile.
	if n < 0 || n > len(payload)*8 {
		return nil, fmt.Errorf("message: batch claims %d frames in %d bytes", n, len(payload))
	}
	bitmap := make([]byte, (n+7)/8)
	if r.err == nil {
		if len(r.buf) < len(bitmap) {
			r.err = fmt.Errorf("message: truncated batch bitmap")
		} else {
			copy(bitmap, r.buf)
			r.buf = r.buf[len(bitmap):]
		}
	}
	b := &Batch{Frames: make([]*Message, 0, n)}
	var partials []*core.SlicePartial
	prevW := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			prevW += r.varint()
			b.Frames = append(b.Frames, &Message{Kind: KindWatermark, From: from, Watermark: prevW})
		} else {
			p := &core.SlicePartial{}
			partials = append(partials, p)
			b.Frames = append(b.Frames, &Message{Kind: KindPartial, From: from, Partial: p})
		}
	}
	if len(partials) == 0 {
		if r.err != nil {
			return nil, r.err
		}
		return b, nil
	}

	nDict := int(r.uvarint())
	if nDict <= 0 || nDict > len(partials) {
		if r.err == nil {
			r.err = fmt.Errorf("message: batch group dictionary of %d for %d partials", nDict, len(partials))
		}
		return nil, r.err
	}
	dict := make([]uint32, nDict)
	for i := range dict {
		dict[i] = uint32(r.uvarint())
	}
	for _, p := range partials {
		idx := int(r.uvarint())
		if r.err == nil && idx >= nDict {
			r.err = fmt.Errorf("message: batch group index %d out of dictionary", idx)
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Group = dict[idx]
	}

	prev := int64(0)
	for _, p := range partials {
		prev += r.varint()
		p.ID = uint64(prev)
	}
	prev = 0
	for _, p := range partials {
		prev += r.varint()
		p.Start = prev
	}
	for _, p := range partials {
		p.End = p.Start + r.varint()
	}
	for _, p := range partials {
		p.LastEvent = p.Start + r.varint()
	}
	for _, p := range partials {
		p.Ingested = r.varint()
	}

	for _, p := range partials {
		// Every agg consumes at least its ops byte downstream, so a count
		// beyond the remaining buffer is hostile.
		nAggs := int(r.uvarint())
		if r.err == nil && nAggs > len(r.buf) {
			r.err = fmt.Errorf("message: batch claims %d aggs in %d bytes", nAggs, len(r.buf))
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Aggs = make([]operator.Agg, nAggs)
	}
	for _, p := range partials {
		for i := range p.Aggs {
			p.Aggs[i].Reset(operator.Op(r.u8()))
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpCount != 0 {
				p.Aggs[i].CountV = r.varint()
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpSum != 0 {
				p.Aggs[i].SumV = r.f64()
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpMult != 0 {
				p.Aggs[i].ProdV = r.f64()
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpDSort != 0 {
				p.Aggs[i].MinV = r.f64()
				p.Aggs[i].MaxV = r.f64()
			}
		}
	}
	for _, p := range partials {
		for i := range p.Aggs {
			if p.Aggs[i].Ops&operator.OpNDSort == 0 {
				continue
			}
			nv := int(r.uvarint())
			if r.err == nil && nv > len(r.buf)/8 {
				r.err = fmt.Errorf("message: batch claims %d retained values in %d bytes", nv, len(r.buf))
			}
			for j := 0; j < nv && r.err == nil; j++ {
				p.Aggs[i].Values = append(p.Aggs[i].Values, r.f64())
			}
			p.Aggs[i].Sorted = true
		}
	}

	for _, p := range partials {
		// Each EP consumes at least one byte per field column.
		nEPs := int(r.uvarint())
		if r.err == nil && nEPs > len(r.buf) {
			r.err = fmt.Errorf("message: batch claims %d EPs in %d bytes", nEPs, len(r.buf))
		}
		if r.err != nil {
			return nil, r.err
		}
		if nEPs > 0 {
			p.EPs = make([]core.EP, nEPs)
		}
	}
	for _, p := range partials {
		for i := range p.EPs {
			p.EPs[i].QueryIdx = int32(r.uvarint())
		}
	}
	for _, p := range partials {
		for i := range p.EPs {
			p.EPs[i].Start = r.varint()
		}
	}
	for _, p := range partials {
		for i := range p.EPs {
			p.EPs[i].End = p.EPs[i].Start + r.varint()
		}
	}
	for _, p := range partials {
		for i := range p.EPs {
			p.EPs[i].GapStart = r.varint()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return b, nil
}

// estimateFrameSize is the batcher's cheap upper-bound guess of a frame's
// encoded size, used only to cap batch construction — precision does not
// matter, monotonicity with payload size does.
func estimateFrameSize(m *Message) int {
	if m.Kind != KindPartial || m.Partial == nil {
		return 12
	}
	n := 48
	for i := range m.Partial.Aggs {
		n += 16 + 8*len(m.Partial.Aggs[i].Values)
	}
	n += 28 * len(m.Partial.EPs)
	return n
}
