package message

import (
	"fmt"
	"strconv"
	"strings"

	"desis/internal/core"
	"desis/internal/event"
	"desis/internal/invariant"
	"desis/internal/operator"
	"desis/internal/telemetry"
)

// Text is a Disco-style textual codec: numbers travel as decimal strings,
// fields are separated by '|' and ';'. It reproduces the observation of
// §6.4.1 that Disco's network overhead is higher "because it uses strings to
// send events and messages between nodes, while all other systems send bytes
// directly". Only the message kinds Disco exchanges (events, partials,
// watermarks, hello/heartbeat) are supported; control messages fall back to
// the binary codec's job in practice but are encoded here too for symmetry
// in tests.
type Text struct{}

// Name implements Codec.
func (Text) Name() string { return "text" }

// Append implements Codec.
func (Text) Append(buf []byte, m *Message) ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|", m.Kind, m.From)
	switch m.Kind {
	case KindHello:
		fmt.Fprintf(&sb, "%d", m.Epoch)
	case KindGoodbye:
	case KindHeartbeat:
		if d := m.Load; d != nil {
			fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%d,%d",
				d.Epoch, d.Watermark, d.Events, d.Slices, d.Windows, d.Reconnects, d.ReplayLen)
		}
	case KindEventBatch:
		for _, e := range m.Events {
			fmt.Fprintf(&sb, "%d,%d,%d,%v;", e.Time, e.Key, e.Marker, e.Value)
		}
	case KindWatermark:
		fmt.Fprintf(&sb, "%d", m.Watermark)
	case KindPartial:
		p := m.Partial
		invariant.AssertPartialLive(p)
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%d|", p.Group, p.ID, p.Start, p.End, p.LastEvent, p.Ingested)
		for i := range p.Aggs {
			a := &p.Aggs[i]
			fmt.Fprintf(&sb, "%d,%d,%v,%v,%v,%v", a.Ops, a.CountV, a.SumV, a.ProdV, a.MinV, a.MaxV)
			for _, v := range a.Values {
				fmt.Fprintf(&sb, ",%v", v)
			}
			sb.WriteByte(';')
		}
		sb.WriteByte('|')
		for _, ep := range p.EPs {
			fmt.Fprintf(&sb, "%d,%d,%d,%d;", ep.QueryIdx, ep.Start, ep.End, ep.GapStart)
		}
	case KindBatch:
		// Disco-style batch: the nested frames' own text encodings separated
		// by newlines, which no frame encoding contains.
		for i, f := range m.Batch.Frames {
			if !Batchable(f.Kind) {
				return nil, fmt.Errorf("message: batch frame %d: kind %d is not batchable", i, f.Kind)
			}
			nested := *f
			nested.From = m.From
			enc, err := Text{}.Append(nil, &nested)
			if err != nil {
				return nil, err
			}
			if i > 0 {
				sb.WriteByte('\n')
			}
			sb.Write(enc)
		}
	default:
		return nil, fmt.Errorf("message: text codec cannot encode kind %d", m.Kind)
	}
	return append(buf, sb.String()...), nil
}

// Decode implements Codec.
func (Text) Decode(buf []byte) (*Message, error) {
	s := string(buf)
	head := strings.SplitN(s, "|", 3)
	if len(head) < 2 {
		return nil, fmt.Errorf("message: malformed text message %q", s)
	}
	kind, err := strconv.Atoi(head[0])
	if err != nil {
		return nil, err
	}
	from, err := strconv.Atoi(head[1])
	if err != nil {
		return nil, err
	}
	m := &Message{Kind: Kind(kind), From: uint32(from)}
	rest := ""
	if len(head) == 3 {
		rest = head[2]
	}
	switch m.Kind {
	case KindHello:
		if rest != "" {
			if m.Epoch, err = strconv.ParseUint(rest, 10, 64); err != nil {
				return nil, err
			}
		}
	case KindGoodbye:
	case KindHeartbeat:
		if rest != "" {
			f := strings.Split(rest, ",")
			if len(f) != 7 {
				return nil, fmt.Errorf("message: malformed text load digest %q", rest)
			}
			d := &telemetry.LoadDigest{}
			if d.Epoch, err = strconv.ParseUint(f[0], 10, 64); err != nil {
				return nil, err
			}
			if d.Watermark, err = strconv.ParseInt(f[1], 10, 64); err != nil {
				return nil, err
			}
			if d.Events, err = strconv.ParseUint(f[2], 10, 64); err != nil {
				return nil, err
			}
			if d.Slices, err = strconv.ParseUint(f[3], 10, 64); err != nil {
				return nil, err
			}
			if d.Windows, err = strconv.ParseUint(f[4], 10, 64); err != nil {
				return nil, err
			}
			if d.Reconnects, err = strconv.ParseUint(f[5], 10, 64); err != nil {
				return nil, err
			}
			rl, err := strconv.ParseUint(f[6], 10, 32)
			if err != nil {
				return nil, err
			}
			d.ReplayLen = uint32(rl)
			m.Load = d
		}
	case KindWatermark:
		w, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return nil, err
		}
		m.Watermark = w
	case KindEventBatch:
		for _, rec := range strings.Split(rest, ";") {
			if rec == "" {
				continue
			}
			f := strings.Split(rec, ",")
			if len(f) != 4 {
				return nil, fmt.Errorf("message: malformed text event %q", rec)
			}
			var e event.Event
			if e.Time, err = strconv.ParseInt(f[0], 10, 64); err != nil {
				return nil, err
			}
			k, err := strconv.ParseUint(f[1], 10, 32)
			if err != nil {
				return nil, err
			}
			e.Key = uint32(k)
			mk, err := strconv.ParseUint(f[2], 10, 8)
			if err != nil {
				return nil, err
			}
			e.Marker = uint8(mk)
			if e.Value, err = strconv.ParseFloat(f[3], 64); err != nil {
				return nil, err
			}
			m.Events = append(m.Events, e)
		}
	case KindPartial:
		parts := strings.SplitN(rest, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("message: malformed text partial %q", rest)
		}
		hf := strings.Split(parts[0], ",")
		if len(hf) != 6 {
			return nil, fmt.Errorf("message: malformed text partial header %q", parts[0])
		}
		p := &core.SlicePartial{}
		g, err := strconv.ParseUint(hf[0], 10, 32)
		if err != nil {
			return nil, err
		}
		p.Group = uint32(g)
		if p.ID, err = strconv.ParseUint(hf[1], 10, 64); err != nil {
			return nil, err
		}
		if p.Start, err = strconv.ParseInt(hf[2], 10, 64); err != nil {
			return nil, err
		}
		if p.End, err = strconv.ParseInt(hf[3], 10, 64); err != nil {
			return nil, err
		}
		if p.LastEvent, err = strconv.ParseInt(hf[4], 10, 64); err != nil {
			return nil, err
		}
		if p.Ingested, err = strconv.ParseInt(hf[5], 10, 64); err != nil {
			return nil, err
		}
		for _, rec := range strings.Split(parts[1], ";") {
			if rec == "" {
				continue
			}
			f := strings.Split(rec, ",")
			if len(f) < 6 {
				return nil, fmt.Errorf("message: malformed text agg %q", rec)
			}
			var a operator.Agg
			ops, err := strconv.ParseUint(f[0], 10, 8)
			if err != nil {
				return nil, err
			}
			a.Ops = operator.Op(ops)
			if a.CountV, err = strconv.ParseInt(f[1], 10, 64); err != nil {
				return nil, err
			}
			if a.SumV, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, err
			}
			if a.ProdV, err = strconv.ParseFloat(f[3], 64); err != nil {
				return nil, err
			}
			if a.MinV, err = strconv.ParseFloat(f[4], 64); err != nil {
				return nil, err
			}
			if a.MaxV, err = strconv.ParseFloat(f[5], 64); err != nil {
				return nil, err
			}
			for _, vs := range f[6:] {
				v, err := strconv.ParseFloat(vs, 64)
				if err != nil {
					return nil, err
				}
				a.Values = append(a.Values, v)
			}
			a.Sorted = true
			p.Aggs = append(p.Aggs, a)
		}
		for _, rec := range strings.Split(parts[2], ";") {
			if rec == "" {
				continue
			}
			f := strings.Split(rec, ",")
			if len(f) != 4 {
				return nil, fmt.Errorf("message: malformed text ep %q", rec)
			}
			var ep core.EP
			qi, err := strconv.ParseInt(f[0], 10, 32)
			if err != nil {
				return nil, err
			}
			ep.QueryIdx = int32(qi)
			if ep.Start, err = strconv.ParseInt(f[1], 10, 64); err != nil {
				return nil, err
			}
			if ep.End, err = strconv.ParseInt(f[2], 10, 64); err != nil {
				return nil, err
			}
			if ep.GapStart, err = strconv.ParseInt(f[3], 10, 64); err != nil {
				return nil, err
			}
			p.EPs = append(p.EPs, ep)
		}
		m.Partial = p
	case KindBatch:
		b := &Batch{}
		if rest != "" {
			nestedBatch := fmt.Sprintf("%d|", KindBatch)
			for _, line := range strings.Split(rest, "\n") {
				// Reject nested batches before recursing, so hostile input
				// cannot stack batch-in-batch arbitrarily deep.
				if strings.HasPrefix(line, nestedBatch) {
					return nil, fmt.Errorf("message: text batch nests a batch")
				}
				f, err := Text{}.Decode([]byte(line))
				if err != nil {
					return nil, err
				}
				if !Batchable(f.Kind) {
					return nil, fmt.Errorf("message: text batch carries kind %d", f.Kind)
				}
				f.From = m.From
				b.Frames = append(b.Frames, f)
			}
		}
		m.Batch = b
	default:
		return nil, fmt.Errorf("message: text codec cannot decode kind %d", m.Kind)
	}
	return m, nil
}
