package window

import "testing"

func TestSessionsStateRoundTrip(t *testing.T) {
	var s Sessions
	s.Add(1, 50)
	s.Add(2, 100)
	if !s.NeedsStart() {
		t.Fatal("fresh sessions do not need a start")
	}
	s.Observe(10)
	if s.NeedsStart() {
		t.Fatal("active sessions still report NeedsStart")
	}
	if s.LastEvent() != 10 {
		t.Fatalf("LastEvent = %d", s.LastEvent())
	}
	s.ExpireBefore(70, func(int, int64, int64) {}) // expires id 1 only
	entries, last, have := s.State()
	if len(entries) != 2 || last != 10 || !have {
		t.Fatalf("State() = %v, %d, %v", entries, last, have)
	}

	var r Sessions
	r.Add(1, 50)
	r.Add(2, 100)
	r.SetState(entries, last, have)
	if r.NextEnd() != s.NextEnd() {
		t.Errorf("restored NextEnd %d, want %d", r.NextEnd(), s.NextEnd())
	}
	if r.EarliestOpenStart() != s.EarliestOpenStart() {
		t.Errorf("restored EarliestOpenStart %d, want %d", r.EarliestOpenStart(), s.EarliestOpenStart())
	}
	if !r.NeedsStart() { // id 1 inactive after expiry
		t.Error("restored tracker lost the inactive entry")
	}
}

func TestUserDefinedStateRoundTrip(t *testing.T) {
	var u UserDefined
	u.Add(1)
	u.Add(2)
	if !u.NeedsStart() {
		t.Fatal("fresh user-defined tracker does not need a start")
	}
	u.Observe(7)
	if u.NeedsStart() {
		t.Fatal("active tracker reports NeedsStart")
	}
	st := u.State()
	if len(st) != 2 || !st[0].Active || st[0].Start != 7 {
		t.Fatalf("State() = %v", st)
	}

	var r UserDefined
	r.Add(1)
	r.Add(2)
	r.SetState(st)
	if r.EarliestOpenStart() != 7 {
		t.Errorf("restored EarliestOpenStart = %d, want 7", r.EarliestOpenStart())
	}
	closed := 0
	r.Marker(20, func(id int, start, end int64) {
		if start != 7 || end != 20 {
			t.Errorf("restored window [%d,%d), want [7,20)", start, end)
		}
		closed++
	})
	if closed != 2 {
		t.Errorf("marker closed %d windows, want 2", closed)
	}
}

func TestSetStateIgnoresUnknownIDs(t *testing.T) {
	var s Sessions
	s.Add(1, 10)
	s.SetState([]DynamicState{{ID: 99, Active: true, Start: 5}}, 5, true)
	if s.EarliestOpenStart() != NoBoundary {
		t.Error("state for unknown id applied")
	}
}
