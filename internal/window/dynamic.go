package window

// Dynamic (unfixed-size) window tracking: session windows close after an
// inactivity gap, user-defined windows close at marker events (§2.1, §5.1.2).

// Sessions tracks the open session window of each registered session query.
// All queries of one group observe the same events (same key), so one
// last-event timestamp is shared; each query's gap produces its own end
// punctuation. The per-event operations (Observe, NextEnd, NeedsStart) are
// O(1): groups with thousands of session queries stay cheap, and the
// per-entry scans only run at (rare) activation, expiry, and removal.
type Sessions struct {
	entries      []sessionEntry
	lastEvent    int64
	haveEvent    bool
	inactive     int   // entries currently without an open session
	minActiveGap int64 // smallest gap among active entries; NoBoundary if none
}

type sessionEntry struct {
	id     int
	gap    int64
	active bool
	start  int64
}

// Add registers a session query with the given inactivity gap under id.
func (s *Sessions) Add(id int, gap int64) {
	s.entries = append(s.entries, sessionEntry{id: id, gap: gap})
	s.inactive++
	if s.minActiveGap == 0 {
		s.minActiveGap = NoBoundary
	}
}

// Remove drops the session query registered under id.
func (s *Sessions) Remove(id int) {
	for i, e := range s.entries {
		if e.id == id {
			if !e.active {
				s.inactive--
			}
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			s.recomputeMinGap()
			return
		}
	}
}

// Empty reports whether no session queries are registered.
func (s *Sessions) Empty() bool { return len(s.entries) == 0 }

// NeedsStart reports whether the next observed event will open a session —
// i.e. some registered session query is inactive. A session opening is a
// start punctuation (sp) and must cut the current slice (§4.1).
func (s *Sessions) NeedsStart() bool { return s.inactive > 0 }

// LastEvent returns the time of the newest observed event; only meaningful
// after the first Observe.
func (s *Sessions) LastEvent() int64 { return s.lastEvent }

// Observe records a data event at time t: it opens sessions that were
// inactive and extends running ones. Call ExpireBefore(t) first so sessions
// that the gap already closed are finalised at their true end.
func (s *Sessions) Observe(t int64) {
	s.lastEvent = t
	s.haveEvent = true
	if s.inactive == 0 {
		return
	}
	for i := range s.entries {
		if !s.entries[i].active {
			s.entries[i].active = true
			s.entries[i].start = t
		}
	}
	s.inactive = 0
	s.recomputeMinGap()
}

// NextEnd returns the earliest pending session end punctuation
// (lastEvent+gap over the active sessions), or NoBoundary.
func (s *Sessions) NextEnd() int64 {
	if !s.haveEvent || s.minActiveGap == NoBoundary {
		return NoBoundary
	}
	return s.lastEvent + s.minActiveGap
}

// ExpireBefore closes every active session whose gap elapsed at or before
// now, calling fn(id, start, end) with end = lastEvent + gap.
func (s *Sessions) ExpireBefore(now int64, fn func(id int, start, end int64)) {
	if !s.haveEvent || s.NextEnd() > now {
		return
	}
	for i := range s.entries {
		e := &s.entries[i]
		if e.active && s.lastEvent+e.gap <= now {
			e.active = false
			s.inactive++
			fn(e.id, e.start, s.lastEvent+e.gap)
		}
	}
	s.recomputeMinGap()
}

// recomputeMinGap refreshes the cached earliest gap after membership or
// activation changes.
func (s *Sessions) recomputeMinGap() {
	s.minActiveGap = NoBoundary
	for _, e := range s.entries {
		if e.active && e.gap < s.minActiveGap {
			s.minActiveGap = e.gap
		}
	}
}

// DynamicState is the serialisable state of one dynamic-window entry, used
// by engine snapshots.
type DynamicState struct {
	ID     int
	Active bool
	Start  int64
}

// State exports the tracker's dynamic state (plus the shared last-event
// time) for snapshotting.
func (s *Sessions) State() (entries []DynamicState, lastEvent int64, haveEvent bool) {
	for _, e := range s.entries {
		entries = append(entries, DynamicState{ID: e.id, Active: e.active, Start: e.start})
	}
	return entries, s.lastEvent, s.haveEvent
}

// SetState restores dynamic state captured by State onto entries registered
// with Add; entries are matched by id.
func (s *Sessions) SetState(entries []DynamicState, lastEvent int64, haveEvent bool) {
	s.lastEvent = lastEvent
	s.haveEvent = haveEvent
	for _, st := range entries {
		for i := range s.entries {
			if s.entries[i].id == st.ID {
				s.entries[i].active = st.Active
				s.entries[i].start = st.Start
			}
		}
	}
	s.inactive = 0
	for _, e := range s.entries {
		if !e.active {
			s.inactive++
		}
	}
	s.recomputeMinGap()
}

// EarliestOpenStart returns the start of the oldest active session, or
// NoBoundary.
func (s *Sessions) EarliestOpenStart() int64 {
	earliest := int64(NoBoundary)
	for _, e := range s.entries {
		if e.active && e.start < earliest {
			earliest = e.start
		}
	}
	return earliest
}

// UserDefined tracks marker-delimited windows. Every marker event ends the
// open window of each registered query and starts the next one. Observe and
// NeedsStart are O(1); the per-entry work happens at markers.
type UserDefined struct {
	entries  []udEntry
	inactive int
}

type udEntry struct {
	id     int
	active bool
	start  int64
}

// Add registers a user-defined-window query under id.
func (u *UserDefined) Add(id int) {
	u.entries = append(u.entries, udEntry{id: id})
	u.inactive++
}

// Remove drops the query registered under id.
func (u *UserDefined) Remove(id int) {
	for i, e := range u.entries {
		if e.id == id {
			if !e.active {
				u.inactive--
			}
			u.entries = append(u.entries[:i], u.entries[i+1:]...)
			return
		}
	}
}

// Empty reports whether no user-defined queries are registered.
func (u *UserDefined) Empty() bool { return len(u.entries) == 0 }

// NeedsStart reports whether the next observed event will open a window for
// some registered query — a start punctuation that must cut the slice.
func (u *UserDefined) NeedsStart() bool { return u.inactive > 0 }

// Observe records a data event at t, opening windows for queries that have
// none yet (the first window starts at the first event).
func (u *UserDefined) Observe(t int64) { u.ObserveOpened(t, nil) }

// ObserveOpened is Observe with a callback for each entry whose window this
// event opens, so the engine can stamp the window's first slice.
func (u *UserDefined) ObserveOpened(t int64, opened func(id int)) {
	if u.inactive == 0 {
		return
	}
	for i := range u.entries {
		if !u.entries[i].active {
			u.entries[i].active = true
			u.entries[i].start = t
			if opened != nil {
				opened(u.entries[i].id)
			}
		}
	}
	u.inactive = 0
}

// Marker handles a boundary marker at time t: every open window ends at t
// (fn(id, start, t)) and the next window opens at t.
func (u *UserDefined) Marker(t int64, fn func(id int, start, end int64)) {
	for i := range u.entries {
		e := &u.entries[i]
		if e.active {
			fn(e.id, e.start, t)
		}
		e.active = true
		e.start = t
	}
	u.inactive = 0
}

// State exports the tracker's dynamic state for snapshotting.
func (u *UserDefined) State() []DynamicState {
	var out []DynamicState
	for _, e := range u.entries {
		out = append(out, DynamicState{ID: e.id, Active: e.active, Start: e.start})
	}
	return out
}

// SetState restores dynamic state captured by State, matching by id.
func (u *UserDefined) SetState(entries []DynamicState) {
	for _, st := range entries {
		for i := range u.entries {
			if u.entries[i].id == st.ID {
				u.entries[i].active = st.Active
				u.entries[i].start = st.Start
			}
		}
	}
	u.inactive = 0
	for _, e := range u.entries {
		if !e.active {
			u.inactive++
		}
	}
}

// EarliestOpenStart returns the start of the oldest open user-defined
// window, or NoBoundary.
func (u *UserDefined) EarliestOpenStart() int64 {
	earliest := int64(NoBoundary)
	for _, e := range u.entries {
		if e.active && e.start < earliest {
			earliest = e.start
		}
	}
	return earliest
}
