package window

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestCalendarTumblingBoundaries(t *testing.T) {
	var c Calendar
	c.Add(1, 10, 10)
	want := []int64{10, 20, 30}
	at := int64(0)
	for _, w := range want {
		got := c.NextBoundary(at)
		if got != w {
			t.Fatalf("NextBoundary(%d) = %d, want %d", at, got, w)
		}
		at = got
	}
	// Zero is a start boundary but NextBoundary is strict.
	if got := c.NextBoundary(-1); got != 0 {
		t.Errorf("NextBoundary(-1) = %d, want 0", got)
	}
}

func TestCalendarSlidingBoundaries(t *testing.T) {
	var c Calendar
	c.Add(1, 10, 4) // starts 0,4,8,...; ends 10,14,18,...
	var got []int64
	at := int64(0)
	for i := 0; i < 6; i++ {
		at = c.NextBoundary(at)
		got = append(got, at)
	}
	want := []int64{4, 8, 10, 12, 14, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", got, want)
		}
	}
}

func TestCalendarEndsAt(t *testing.T) {
	var c Calendar
	c.Add(1, 10, 10) // tumbling 10
	c.Add(2, 10, 4)  // sliding 10/4
	ends := map[int]int64{}
	c.EndsAt(20, func(id int, start int64) { ends[id] = start })
	if ends[1] != 10 {
		t.Errorf("tumbling end at 20: start = %d, want 10", ends[1])
	}
	// sliding: 20-10=10, 10%4 != 0 -> no end.
	if _, ok := ends[2]; ok {
		t.Error("sliding window reported end at 20")
	}
	ends = map[int]int64{}
	c.EndsAt(18, func(id int, start int64) { ends[id] = start })
	if ends[2] != 8 {
		t.Errorf("sliding end at 18: start = %d, want 8", ends[2])
	}
}

func TestCalendarMultipleQueries(t *testing.T) {
	var c Calendar
	c.Add(1, 6, 6)
	c.Add(2, 10, 10)
	var got []int64
	at := int64(0)
	for at < 30 {
		at = c.NextBoundary(at)
		got = append(got, at)
	}
	want := []int64{6, 10, 12, 18, 20, 24, 30}
	if len(got) != len(want) {
		t.Fatalf("boundaries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", got, want)
		}
	}
}

func TestCalendarRemove(t *testing.T) {
	var c Calendar
	c.Add(1, 10, 10)
	c.Add(2, 7, 7)
	c.Remove(2)
	if got := c.NextBoundary(0); got != 10 {
		t.Errorf("after Remove: NextBoundary(0) = %d, want 10", got)
	}
	c.Remove(1)
	if !c.Empty() {
		t.Error("calendar not empty after removing all")
	}
	if got := c.NextBoundary(0); got != NoBoundary {
		t.Errorf("empty calendar NextBoundary = %d", got)
	}
}

func TestCalendarEarliestOpenStart(t *testing.T) {
	var c Calendar
	c.Add(1, 10, 4)
	// At t=13 the open windows are [4,14), [8,18), [12,22).
	if got := c.EarliestOpenStart(13); got != 4 {
		t.Errorf("EarliestOpenStart(13) = %d, want 4", got)
	}
	// At t=14 the window [4,14) just closed.
	if got := c.EarliestOpenStart(14); got != 8 {
		t.Errorf("EarliestOpenStart(14) = %d, want 8", got)
	}
	if got := c.EarliestOpenStart(2); got != 0 {
		t.Errorf("EarliestOpenStart(2) = %d, want 0", got)
	}
}

// TestCalendarMatchesNaiveQuick cross-checks the arithmetic boundary
// calendar against a brute-force enumeration — the ablation of §6's
// "window ends in advance" claim depends on both agreeing.
func TestCalendarMatchesNaiveQuick(t *testing.T) {
	f := func(lenSeed, slideSeed uint8, horizon uint16) bool {
		length := int64(lenSeed%50) + 1
		slide := int64(slideSeed)%length + 1
		var c Calendar
		c.Add(1, length, slide)

		// Brute force: every start (k*slide) and end (k*slide+length).
		bound := int64(horizon % 2000)
		naive := map[int64]bool{}
		for k := int64(0); k*slide <= bound+length; k++ {
			naive[k*slide] = true
			naive[k*slide+length] = true
		}
		var want []int64
		for b := range naive {
			if b > 0 && b <= bound {
				want = append(want, b)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		var got []int64
		at := int64(0)
		for {
			at = c.NextBoundary(at)
			if at > bound || at == NoBoundary {
				break
			}
			got = append(got, at)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSessions(t *testing.T) {
	var s Sessions
	s.Add(1, 5)
	s.Add(2, 10)
	if got := s.NextEnd(); got != NoBoundary {
		t.Fatalf("NextEnd before events = %d", got)
	}
	s.Observe(100)
	s.Observe(103)
	if got := s.NextEnd(); got != 108 {
		t.Fatalf("NextEnd = %d, want 108", got)
	}
	type closed struct {
		id         int
		start, end int64
	}
	var got []closed
	// Next event at 120: both gaps elapsed.
	s.ExpireBefore(120, func(id int, start, end int64) {
		got = append(got, closed{id, start, end})
	})
	if len(got) != 2 {
		t.Fatalf("closed %v", got)
	}
	for _, c := range got {
		wantEnd := int64(108)
		if c.id == 2 {
			wantEnd = 113
		}
		if c.start != 100 || c.end != wantEnd {
			t.Errorf("session %d closed [%d,%d), want [100,%d)", c.id, c.start, c.end, wantEnd)
		}
	}
	s.Observe(120)
	if got := s.EarliestOpenStart(); got != 120 {
		t.Errorf("EarliestOpenStart = %d, want 120", got)
	}
}

func TestSessionsPartialExpiry(t *testing.T) {
	var s Sessions
	s.Add(1, 5)
	s.Add(2, 50)
	s.Observe(0)
	var ids []int
	s.ExpireBefore(10, func(id int, _, _ int64) { ids = append(ids, id) })
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("expired %v, want [1]", ids)
	}
	// The long session is still open and extends with new events.
	s.Observe(10)
	if got := s.NextEnd(); got != 15 {
		t.Errorf("NextEnd = %d, want 15 (reopened short session)", got)
	}
	if got := s.EarliestOpenStart(); got != 0 {
		t.Errorf("EarliestOpenStart = %d, want 0 (long session)", got)
	}
}

func TestSessionsRemove(t *testing.T) {
	var s Sessions
	s.Add(1, 5)
	s.Remove(1)
	if !s.Empty() {
		t.Error("Sessions not empty after Remove")
	}
	s.Observe(10)
	if got := s.NextEnd(); got != NoBoundary {
		t.Errorf("NextEnd with no entries = %d", got)
	}
}

func TestUserDefined(t *testing.T) {
	var u UserDefined
	u.Add(1)
	u.Observe(10)
	type closed struct{ start, end int64 }
	var got []closed
	u.Marker(25, func(id int, start, end int64) { got = append(got, closed{start, end}) })
	if len(got) != 1 || got[0] != (closed{10, 25}) {
		t.Fatalf("marker closed %v", got)
	}
	// Next window opened at the marker.
	if got := u.EarliestOpenStart(); got != 25 {
		t.Errorf("EarliestOpenStart = %d, want 25", got)
	}
	u.Marker(40, func(id int, start, end int64) { got = append(got, closed{start, end}) })
	if len(got) != 2 || got[1] != (closed{25, 40}) {
		t.Fatalf("second marker closed %v", got)
	}
}

func TestUserDefinedMarkerBeforeEvents(t *testing.T) {
	var u UserDefined
	u.Add(1)
	calls := 0
	u.Marker(5, func(int, int64, int64) { calls++ })
	if calls != 0 {
		t.Error("marker before any window closed something")
	}
	// But it opens the first window.
	if got := u.EarliestOpenStart(); got != 5 {
		t.Errorf("EarliestOpenStart = %d, want 5", got)
	}
}

func TestUserDefinedRemove(t *testing.T) {
	var u UserDefined
	u.Add(1)
	u.Add(2)
	u.Remove(1)
	u.Observe(1)
	calls := 0
	u.Marker(2, func(id int, _, _ int64) {
		if id != 2 {
			t.Errorf("marker fired for removed id %d", id)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("marker fired %d times, want 1", calls)
	}
	u.Remove(2)
	if !u.Empty() {
		t.Error("UserDefined not empty")
	}
}
