// Package window provides the punctuation machinery of the window manager
// (§3.1, §4.1): for every window type and measure it answers two questions —
// when is the next start/end punctuation, and which windows end at a given
// punctuation. Fixed-size windows get a *calendar* that computes boundaries
// arithmetically, which is how Desis "calculates window ends in advance
// instead of checking each arriving event" (§6.2.1).
package window

import "math"

// NoBoundary is returned when no further punctuation is scheduled.
const NoBoundary = math.MaxInt64

// Calendar tracks the boundary arithmetic of fixed-size (tumbling and
// sliding) windows on one axis — event-time milliseconds or event counts.
// Boundaries are aligned to origin zero, matching the paper's setting where
// slices of concurrent fixed windows align across nodes (§5.1.1).
type Calendar struct {
	specs []calendarSpec
}

type calendarSpec struct {
	id     int // caller-chosen identifier (query index within the group)
	length int64
	slide  int64 // == length for tumbling windows
}

// Add registers a fixed window of the given length and slide under id.
// Tumbling windows pass slide == length.
func (c *Calendar) Add(id int, length, slide int64) {
	c.specs = append(c.specs, calendarSpec{id: id, length: length, slide: slide})
}

// Remove drops the window registered under id, if present.
func (c *Calendar) Remove(id int) {
	for i, s := range c.specs {
		if s.id == id {
			c.specs = append(c.specs[:i], c.specs[i+1:]...)
			return
		}
	}
}

// Empty reports whether no windows are registered.
func (c *Calendar) Empty() bool { return len(c.specs) == 0 }

// NextBoundary returns the earliest punctuation (window start or end)
// strictly greater than after, or NoBoundary when no windows are
// registered. Positions are assumed non-negative.
func (c *Calendar) NextBoundary(after int64) int64 {
	next := int64(NoBoundary)
	for _, s := range c.specs {
		// Next window start: the smallest multiple of slide > after.
		if b := nextMultiple(after, s.slide); b < next {
			next = b
		}
		// Next window end: the smallest k*slide+length > after with k >= 0.
		if b := nextMultiple(after-s.length, s.slide) + s.length; b < next {
			next = b
		}
	}
	return next
}

// nextMultiple returns the smallest non-negative multiple of step strictly
// greater than v.
func nextMultiple(v, step int64) int64 {
	if v < 0 {
		return 0
	}
	return (v/step + 1) * step
}

// PrevBoundary returns the latest punctuation (window start or end) less
// than or equal to t, or 0 when no windows are registered — sound as a
// floor, since every spec's k=0 window starts at the zero origin.
// Positions are assumed non-negative.
func (c *Calendar) PrevBoundary(t int64) int64 {
	prev := int64(0)
	for _, s := range c.specs {
		// Latest window start: the largest multiple of slide <= t.
		if b := (t / s.slide) * s.slide; b > prev {
			prev = b
		}
		// Latest window end: the largest k*slide+length <= t with k >= 0.
		if t >= s.length {
			if b := ((t-s.length)/s.slide)*s.slide + s.length; b > prev {
				prev = b
			}
		}
	}
	return prev
}

// EndsAt calls fn(id, start) for every registered window that ends exactly
// at boundary t.
func (c *Calendar) EndsAt(t int64, fn func(id int, start int64)) {
	for _, s := range c.specs {
		start := t - s.length
		if start >= 0 && start%s.slide == 0 {
			fn(s.id, start)
		}
	}
}

// EarliestOpenStart returns the start of the oldest registered window still
// open at position t (start <= t < start+length), or NoBoundary when none is
// registered. The slice store uses it to decide how far back slices must be
// retained.
func (c *Calendar) EarliestOpenStart(t int64) int64 {
	earliest := int64(NoBoundary)
	for _, s := range c.specs {
		// Oldest open window: smallest k with k*slide + length > t.
		var k int64
		if t >= s.length {
			k = (t-s.length)/s.slide + 1
		}
		if start := k * s.slide; start <= t && start < earliest {
			earliest = start
		}
	}
	return earliest
}
