package operator

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunMergerBasic(t *testing.T) {
	var m RunMerger
	got := m.Merge([][]float64{{1, 4, 7}, {2, 5}, {3, 6, 8, 9}})
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunMergerEdges(t *testing.T) {
	var m RunMerger
	if got := m.Merge(nil); got != nil {
		t.Errorf("merge of nothing = %v", got)
	}
	if got := m.Merge([][]float64{{}, {}}); got != nil {
		t.Errorf("merge of empties = %v", got)
	}
	single := []float64{1, 2, 3}
	if got := m.Merge([][]float64{{}, single, {}}); len(got) != 3 || got[0] != 1 {
		t.Errorf("single-run merge = %v", got)
	}
}

// TestRunMergerQuick checks against sort over the concatenation, across
// run counts (odd and even) and reuse of one merger.
func TestRunMergerQuick(t *testing.T) {
	var m RunMerger
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%17
		runs := make([][]float64, k)
		var all []float64
		for i := range runs {
			n := rng.Intn(40)
			r := make([]float64, n)
			for j := range r {
				r[j] = rng.NormFloat64() * 100
			}
			sort.Float64s(r)
			runs[i] = r
			all = append(all, r...)
		}
		sort.Float64s(all)
		got := m.Merge(runs)
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRunMerger(b *testing.B) {
	runs := make([][]float64, 10)
	for i := range runs {
		r := make([]float64, 333)
		for j := range r {
			r[j] = float64(j*(i+3)) * 1.3
		}
		sort.Float64s(r)
		runs[i] = r
	}
	var m RunMerger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Merge(runs)
	}
}
