package operator

import (
	"math"
	"testing"
)

// TestFunctionOperators verifies Table 1 of the paper: the mapping from
// aggregation functions to primitive operators.
func TestFunctionOperators(t *testing.T) {
	table := []struct {
		f    Func
		want Op
	}{
		{Sum, OpSum},
		{Count, OpCount},
		{Average, OpSum | OpCount},
		{Product, OpMult},
		{GeoMean, OpMult | OpCount},
		{Max, OpDSort},
		{Min, OpDSort},
		{Median, OpNDSort},
		{Quantile, OpNDSort},
	}
	for _, tc := range table {
		if got := OperatorsOf(tc.f); got != tc.want {
			t.Errorf("OperatorsOf(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestUnionSharesOperators(t *testing.T) {
	// avg + sum share the sum operator: 2 operators total, not 3 (§4.2.1).
	got := Union([]FuncSpec{{Func: Average}, {Func: Sum}})
	if got != OpSum|OpCount {
		t.Errorf("Union(avg, sum) = %v, want sum|count", got)
	}
	if got.NumOps() != 2 {
		t.Errorf("Union(avg, sum).NumOps() = %d, want 2", got.NumOps())
	}
	// max + median share the non-decomposable sort (§4.2.2): the
	// decomposable sort is dropped because sorted values answer max.
	got = Union([]FuncSpec{{Func: Max}, {Func: Median}})
	if got != OpNDSort {
		t.Errorf("Union(max, median) = %v, want ndsort", got)
	}
	// quantile + max likewise share one operator (Fig 9g).
	got = Union([]FuncSpec{{Func: Quantile, Arg: 0.9}, {Func: Max}})
	if got != OpNDSort {
		t.Errorf("Union(quantile, max) = %v, want ndsort", got)
	}
	// min + max share the decomposable sort.
	got = Union([]FuncSpec{{Func: Min}, {Func: Max}})
	if got != OpDSort {
		t.Errorf("Union(min, max) = %v, want dsort", got)
	}
}

func TestNumOps(t *testing.T) {
	if n := Op(0).NumOps(); n != 0 {
		t.Errorf("empty NumOps = %d", n)
	}
	if n := (OpSum | OpCount | OpNDSort).NumOps(); n != 3 {
		t.Errorf("NumOps = %d, want 3", n)
	}
}

func TestParseFunc(t *testing.T) {
	for f := Sum; f < numFuncs; f++ {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunc(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFunc("nope"); err == nil {
		t.Error("ParseFunc(nope) succeeded")
	}
}

func TestDecomposable(t *testing.T) {
	for f := Sum; f < numFuncs; f++ {
		want := f != Median && f != Quantile
		if got := f.Decomposable(); got != want {
			t.Errorf("%v.Decomposable() = %v, want %v", f, got, want)
		}
	}
}

func TestFuncSpecValidate(t *testing.T) {
	if err := (FuncSpec{Func: Quantile, Arg: 0.5}).Validate(); err != nil {
		t.Errorf("valid quantile rejected: %v", err)
	}
	if err := (FuncSpec{Func: Quantile, Arg: 0}).Validate(); err == nil {
		t.Error("quantile(0) accepted")
	}
	if err := (FuncSpec{Func: Quantile, Arg: 1.5}).Validate(); err == nil {
		t.Error("quantile(1.5) accepted")
	}
	if err := (FuncSpec{Func: numFuncs}).Validate(); err == nil {
		t.Error("unknown function accepted")
	}
	if err := (FuncSpec{Func: Sum}).Validate(); err != nil {
		t.Errorf("sum rejected: %v", err)
	}
}

func TestFuncSpecString(t *testing.T) {
	if s := (FuncSpec{Func: Quantile, Arg: 0.99}).String(); s != "quantile(0.99)" {
		t.Errorf("String() = %q", s)
	}
	if s := (FuncSpec{Func: Average}).String(); s != "average" {
		t.Errorf("String() = %q", s)
	}
}

func TestOpString(t *testing.T) {
	if s := (OpSum | OpCount).String(); s != "sum|count" {
		t.Errorf("String() = %q", s)
	}
	if s := Op(0).String(); s != "none" {
		t.Errorf("String() = %q", s)
	}
}

func TestAggBasic(t *testing.T) {
	a := NewAgg(OpSum | OpCount | OpMult | OpDSort | OpNDSort)
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	a.Finish()
	if a.CountV != 3 || a.SumV != 6 || a.ProdV != 6 {
		t.Fatalf("count=%d sum=%g prod=%g", a.CountV, a.SumV, a.ProdV)
	}
	if a.MinV != 1 || a.MaxV != 3 {
		t.Fatalf("min=%g max=%g", a.MinV, a.MaxV)
	}
	want := []float64{1, 2, 3}
	for i, v := range want {
		if a.Values[i] != v {
			t.Fatalf("values = %v, want %v", a.Values, want)
		}
	}
}

func TestAggEval(t *testing.T) {
	a := NewAgg(OpSum | OpCount | OpMult | OpDSort | OpNDSort)
	for _, v := range []float64{4, 1, 3, 2} {
		a.Add(v)
	}
	a.Finish()
	cases := []struct {
		spec FuncSpec
		want float64
	}{
		{FuncSpec{Func: Sum}, 10},
		{FuncSpec{Func: Count}, 4},
		{FuncSpec{Func: Average}, 2.5},
		{FuncSpec{Func: Product}, 24},
		{FuncSpec{Func: GeoMean}, math.Pow(24, 0.25)},
		{FuncSpec{Func: Min}, 1},
		{FuncSpec{Func: Max}, 4},
		{FuncSpec{Func: Median}, 2},
		{FuncSpec{Func: Quantile, Arg: 0.25}, 1},
		{FuncSpec{Func: Quantile, Arg: 1}, 4},
	}
	for _, tc := range cases {
		got, ok := a.Eval(tc.spec)
		if !ok {
			t.Errorf("Eval(%v) not ok", tc.spec)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Eval(%v) = %g, want %g", tc.spec, got, tc.want)
		}
	}
}

func TestAggEvalMinMaxFromNDSort(t *testing.T) {
	// When only the non-decomposable sort ran, min/max come from the
	// sorted values.
	a := NewAgg(OpNDSort | OpCount)
	for _, v := range []float64{5, -1, 2} {
		a.Add(v)
	}
	a.Finish()
	if v, ok := a.Eval(FuncSpec{Func: Min}); !ok || v != -1 {
		t.Errorf("min = %g, %v", v, ok)
	}
	if v, ok := a.Eval(FuncSpec{Func: Max}); !ok || v != 5 {
		t.Errorf("max = %g, %v", v, ok)
	}
}

func TestAggEmpty(t *testing.T) {
	a := NewAgg(OpSum | OpCount | OpDSort | OpNDSort | OpMult)
	a.Finish()
	if !a.Empty() {
		t.Fatal("fresh agg not empty")
	}
	if v, ok := a.Eval(FuncSpec{Func: Count}); !ok || v != 0 {
		t.Errorf("count of empty = %g, %v", v, ok)
	}
	for _, f := range []Func{Sum, Average, Product, GeoMean, Min, Max, Median} {
		if _, ok := a.Eval(FuncSpec{Func: f}); ok {
			t.Errorf("%v of empty window reported ok", f)
		}
	}
	if _, ok := a.Eval(FuncSpec{Func: Quantile, Arg: 0.5}); ok {
		t.Error("quantile of empty window reported ok")
	}
}

func TestAggMerge(t *testing.T) {
	ops := OpSum | OpCount | OpMult | OpDSort | OpNDSort
	a := NewAgg(ops)
	b := NewAgg(ops)
	for _, v := range []float64{1, 5} {
		a.Add(v)
	}
	for _, v := range []float64{3, 2} {
		b.Add(v)
	}
	a.Finish()
	b.Finish()
	a.Merge(&b)
	if a.CountV != 4 || a.SumV != 11 || a.ProdV != 30 {
		t.Fatalf("merged count=%d sum=%g prod=%g", a.CountV, a.SumV, a.ProdV)
	}
	if a.MinV != 1 || a.MaxV != 5 {
		t.Fatalf("merged min=%g max=%g", a.MinV, a.MaxV)
	}
	want := []float64{1, 2, 3, 5}
	if len(a.Values) != len(want) {
		t.Fatalf("merged values = %v", a.Values)
	}
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("merged values = %v, want %v", a.Values, want)
		}
	}
}

func TestAggMergeEmptySides(t *testing.T) {
	ops := OpNDSort | OpCount
	a := NewAgg(ops)
	b := NewAgg(ops)
	b.Add(1)
	b.Finish()
	a.Finish()
	a.Merge(&b)
	if a.CountV != 1 || len(a.Values) != 1 {
		t.Fatalf("empty-left merge: %+v", a)
	}
	c := NewAgg(ops)
	c.Finish()
	a.Merge(&c)
	if a.CountV != 1 || len(a.Values) != 1 {
		t.Fatalf("empty-right merge: %+v", a)
	}
}

func TestAggResetReusesBuffer(t *testing.T) {
	a := NewAgg(OpNDSort)
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
	}
	buf := a.Values
	a.Reset(OpNDSort)
	if len(a.Values) != 0 {
		t.Fatal("Reset did not truncate values")
	}
	a.Add(1)
	if &buf[0] != &a.Values[0] {
		t.Error("Reset reallocated the values buffer")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	a := NewAgg(OpNDSort)
	for i := 1; i <= 10; i++ {
		a.Add(float64(i))
	}
	a.Finish()
	cases := []struct {
		q, want float64
	}{
		{0.1, 1}, {0.25, 3}, {0.5, 5}, {0.9, 9}, {1, 10}, {0.0001, 1},
	}
	for _, tc := range cases {
		got, ok := a.Eval(FuncSpec{Func: Quantile, Arg: tc.q})
		if !ok || got != tc.want {
			t.Errorf("quantile(%g) = %g (%v), want %g", tc.q, got, ok, tc.want)
		}
	}
}
