package operator

// RunMerger merges many ascending runs into one ascending sequence using
// pairwise merge rounds over two reusable buffers: O(n log k) copies and no
// steady-state allocation. Window assembly uses it instead of folding
// slices one by one into the scratch aggregate, which would cost O(n·k)
// (the dominant cost for quantile windows spanning many slices).
//
// The returned slice may alias an internal buffer or a single input run; it
// is only valid until the next Merge call and must be treated read-only.
type RunMerger struct {
	bufA, bufB []float64
	runs       [][]float64
	next       [][]float64
}

// Merge merges the ascending runs. Empty runs are skipped.
func (m *RunMerger) Merge(runs [][]float64) []float64 {
	m.runs = m.runs[:0]
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			m.runs = append(m.runs, r)
			total += len(r)
		}
	}
	if len(m.runs) == 0 {
		return nil
	}
	if cap(m.bufA) < total {
		m.bufA = make([]float64, 0, total)
	}
	if cap(m.bufB) < total {
		m.bufB = make([]float64, 0, total)
	}
	cur := m.runs
	buf, other := m.bufA, m.bufB
	for len(cur) > 1 {
		m.next = m.next[:0]
		out := buf[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			start := len(out)
			out = mergeTwo(out, cur[i], cur[i+1])
			m.next = append(m.next, out[start:len(out):len(out)])
		}
		if len(cur)%2 == 1 {
			// Copy the odd run into this round's buffer too: every
			// next-round run must live outside the buffer the next round
			// writes into.
			start := len(out)
			out = append(out, cur[len(cur)-1]...)
			m.next = append(m.next, out[start:len(out):len(out)])
		}
		cur, m.next = m.next, cur[:0]
		buf, other = other, buf
	}
	return cur[0]
}

// mergeTwo appends the merge of ascending x and y to out.
func mergeTwo(out, x, y []float64) []float64 {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}
