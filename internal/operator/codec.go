package operator

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of partial results. Only the fields selected by the
// operator mask travel on the wire, which is what gives decomposable
// functions their high reduction factor (§6.4.1): an avg partial is 16
// bytes no matter how many events it summarises.

// AppendAgg appends the wire encoding of a to buf. The mask itself is
// written first so the receiver can decode without out-of-band schema.
func AppendAgg(buf []byte, a *Agg) []byte {
	buf = append(buf, byte(a.Ops))
	var tmp [8]byte
	if a.Ops&OpCount != 0 {
		binary.LittleEndian.PutUint64(tmp[:], uint64(a.CountV))
		buf = append(buf, tmp[:]...)
	}
	if a.Ops&OpSum != 0 {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(a.SumV))
		buf = append(buf, tmp[:]...)
	}
	if a.Ops&OpMult != 0 {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(a.ProdV))
		buf = append(buf, tmp[:]...)
	}
	if a.Ops&OpDSort != 0 {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(a.MinV))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(a.MaxV))
		buf = append(buf, tmp[:]...)
	}
	if a.Ops&OpNDSort != 0 {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(a.Values)))
		buf = append(buf, tmp[:4]...)
		for _, v := range a.Values {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
			buf = append(buf, tmp[:]...)
		}
	}
	return buf
}

// DecodeAgg decodes an aggregate written by AppendAgg into a, reusing a's
// Values buffer, and returns the remaining bytes.
func DecodeAgg(buf []byte, a *Agg) ([]byte, error) {
	if len(buf) < 1 {
		return buf, fmt.Errorf("operator: short agg header")
	}
	ops := Op(buf[0])
	buf = buf[1:]
	a.Reset(ops)
	take := func(n int) ([]byte, error) {
		if len(buf) < n {
			return nil, fmt.Errorf("operator: short agg body: need %d bytes, have %d", n, len(buf))
		}
		b := buf[:n]
		buf = buf[n:]
		return b, nil
	}
	if ops&OpCount != 0 {
		b, err := take(8)
		if err != nil {
			return buf, err
		}
		a.CountV = int64(binary.LittleEndian.Uint64(b))
	}
	if ops&OpSum != 0 {
		b, err := take(8)
		if err != nil {
			return buf, err
		}
		a.SumV = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	if ops&OpMult != 0 {
		b, err := take(8)
		if err != nil {
			return buf, err
		}
		a.ProdV = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	if ops&OpDSort != 0 {
		b, err := take(16)
		if err != nil {
			return buf, err
		}
		a.MinV = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
		a.MaxV = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	}
	if ops&OpNDSort != 0 {
		b, err := take(4)
		if err != nil {
			return buf, err
		}
		n := int(binary.LittleEndian.Uint32(b))
		b, err = take(n * 8)
		if err != nil {
			return buf, err
		}
		for i := 0; i < n; i++ {
			a.Values = append(a.Values, math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])))
		}
		// Partials are finished (sorted) before they ship.
		a.Sorted = true
	}
	return buf, nil
}

// EncodedSizeAgg returns the number of bytes AppendAgg will write for a.
func EncodedSizeAgg(a *Agg) int {
	n := 1
	if a.Ops&OpCount != 0 {
		n += 8
	}
	if a.Ops&OpSum != 0 {
		n += 8
	}
	if a.Ops&OpMult != 0 {
		n += 8
	}
	if a.Ops&OpDSort != 0 {
		n += 16
	}
	if a.Ops&OpNDSort != 0 {
		n += 4 + 8*len(a.Values)
	}
	return n
}
