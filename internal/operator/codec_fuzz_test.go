package operator

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip throws arbitrary bytes at DecodeAgg: hostile input must
// produce an error, never a panic or runaway allocation, and anything that
// decodes must re-encode byte-identically to the consumed prefix (Reset
// preserves the raw ops byte, and all payload fields are fixed-width bit
// patterns).
func FuzzCodecRoundTrip(f *testing.F) {
	seed := func(ops Op, vals ...float64) {
		a := NewAgg(ops)
		for _, v := range vals {
			a.Add(v)
		}
		a.Finish()
		f.Add(AppendAgg(nil, &a))
	}
	seed(OpSum | OpCount)
	seed(OpSum|OpCount, 1, 2, 3)
	seed(OpMult|OpDSort, 0.5, 4, -1)
	seed(OpNDSort|OpCount, 3, 1, 2)
	seed(OpSum|OpMult|OpDSort|OpNDSort|OpCount, 9, 8, 7, 6)
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{byte(OpNDSort), 0xff, 0xff, 0xff, 0xff}) // huge claimed length
	f.Fuzz(func(t *testing.T, data []byte) {
		var a Agg
		rest, err := DecodeAgg(data, &a)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		enc := AppendAgg(nil, &a)
		if len(enc) != EncodedSizeAgg(&a) {
			t.Fatalf("EncodedSizeAgg = %d, AppendAgg wrote %d bytes", EncodedSizeAgg(&a), len(enc))
		}
		if !bytes.Equal(enc, consumed) {
			t.Fatalf("re-encode differs from consumed input:\n in  %x\n out %x", consumed, enc)
		}
		var b Agg
		rest2, err := DecodeAgg(enc, &b)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d trailing bytes", len(rest2))
		}
	})
}
