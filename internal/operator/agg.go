package operator

import (
	"math"
	"sort"
	"sync/atomic"
)

// Merge accounting for benchmarks: the factor-window experiment measures how
// many partial-result merges a workload costs with the optimizer on versus
// off. Counting is off by default (one predictable-branch load on the Merge
// path) and exact when enabled; the counter is global, so enable it only
// around single-workload measurement runs.
var (
	countMerges atomic.Bool
	mergeCalls  atomic.Uint64
)

// CountMerges toggles merge counting; enabling it also resets the counter.
func CountMerges(on bool) {
	if on {
		mergeCalls.Store(0)
	}
	countMerges.Store(on)
}

// MergeCalls reports the merges counted since CountMerges(true).
func MergeCalls() uint64 { return mergeCalls.Load() }

// Agg is the per-slice aggregate state for one selection context. It holds
// the intermediate results of every primitive operator the query-group
// needs; unused fields stay at their zero/identity values and cost nothing
// on the hot path because Add branches on the operator mask once per event.
//
// The zero Agg is not ready to use: call Reset (or NewAgg) so the min/max
// and product identities are installed.
type Agg struct {
	// Ops is the operator mask this state was reset for.
	Ops Op
	// CountV is the event count (OpCount).
	CountV int64
	// SumV is the running sum (OpSum).
	SumV float64
	// ProdV is the running product (OpMult).
	ProdV float64
	// MinV and MaxV are the decomposable sort results (OpDSort).
	MinV, MaxV float64
	// Values are the retained events of the non-decomposable sort
	// (OpNDSort); sorted ascending once Finish has run.
	Values []float64
	// Sorted records whether Values is sorted. Merging two sorted runs is
	// linear; merging unsorted data falls back to append+sort.
	Sorted bool
	// scratch is the reusable output buffer of Merge's sorted-run merge: the
	// merged result is built here and the buffers are swapped, so repeated
	// merges into one Agg allocate only until the buffers reach steady-state
	// capacity. Because of this buffer, an Agg that has merged OpNDSort
	// values must not be struct-copied and then merged from both copies —
	// the copies would share (and swap) the same two backing arrays.
	scratch []float64
}

// NewAgg returns an Agg ready to accumulate for the given operator set.
func NewAgg(ops Op) Agg {
	var a Agg
	a.Reset(ops)
	return a
}

// CloneState returns a deep copy of the aggregate state sharing no memory
// with a: Values gets its own backing array and the scratch buffer is not
// carried over (the copy re-grows one on its first merge).
func (a *Agg) CloneState() Agg {
	c := *a
	c.Values = append([]float64(nil), a.Values...)
	c.scratch = nil
	return c
}

// Reset re-initialises a for a new slice, keeping the Values buffer to avoid
// reallocation.
func (a *Agg) Reset(ops Op) {
	a.Ops = ops
	a.CountV = 0
	a.SumV = 0
	a.ProdV = 1
	a.MinV = math.Inf(1)
	a.MaxV = math.Inf(-1)
	a.Values = a.Values[:0]
	a.Sorted = false
}

// Add folds one event value into the aggregate. This is the engine's
// innermost loop; it performs exactly one update per operator in the mask.
func (a *Agg) Add(v float64) {
	ops := a.Ops
	if ops&OpCount != 0 {
		a.CountV++
	}
	if ops&OpSum != 0 {
		a.SumV += v
	}
	if ops&OpMult != 0 {
		a.ProdV *= v
	}
	if ops&OpDSort != 0 {
		if v < a.MinV {
			a.MinV = v
		}
		if v > a.MaxV {
			a.MaxV = v
		}
	}
	if ops&OpNDSort != 0 {
		a.Values = append(a.Values, v)
	}
}

// AddLate folds one out-of-order event into an aggregate that may already
// be Finished: when the retained values are sorted, the new value is
// insertion-shifted into position so the sorted run stays valid without a
// re-sort. On unfinished state it is identical to Add.
func (a *Agg) AddLate(v float64) {
	sorted := a.Sorted
	a.Add(v)
	if a.Ops&OpNDSort != 0 && sorted {
		vals := a.Values
		i := len(vals) - 1
		for i > 0 && vals[i-1] > v {
			vals[i] = vals[i-1]
			i--
		}
		vals[i] = v
		a.Sorted = true
	}
}

// Finish completes the slice: the non-decomposable sort runs once, here,
// so that parents of a decentralized topology receive sorted runs and the
// root only ever merges (§5.2).
func (a *Agg) Finish() {
	if a.Ops&OpNDSort != 0 && !a.Sorted {
		sort.Float64s(a.Values)
	}
	a.Sorted = true
}

// Empty reports whether the aggregate saw no events. It is only meaningful
// when the mask contains OpCount or OpNDSort; the engine guarantees one of
// them is always present (it adds OpCount when a group would otherwise have
// no cardinality signal).
func (a *Agg) Empty() bool {
	if a.Ops&OpCount != 0 {
		return a.CountV == 0
	}
	return len(a.Values) == 0
}

// Merge folds the partial result b into a. Both sides must be Finished when
// the mask contains OpNDSort; the merge of two sorted runs is linear.
func (a *Agg) Merge(b *Agg) {
	if countMerges.Load() {
		mergeCalls.Add(1)
	}
	ops := a.Ops
	if ops&OpCount != 0 {
		a.CountV += b.CountV
	}
	if ops&OpSum != 0 {
		a.SumV += b.SumV
	}
	if ops&OpMult != 0 {
		a.ProdV *= b.ProdV
	}
	if ops&OpDSort != 0 {
		if b.MinV < a.MinV {
			a.MinV = b.MinV
		}
		if b.MaxV > a.MaxV {
			a.MaxV = b.MaxV
		}
	}
	if ops&OpNDSort != 0 {
		a.mergeValues(b.Values)
	}
}

// mergeValues merges the ascending run y into the ascending a.Values through
// the reusable scratch buffer; y must not alias either internal buffer.
func (a *Agg) mergeValues(y []float64) {
	if len(y) == 0 {
		return
	}
	if len(a.Values) == 0 {
		a.Values = append(a.Values, y...)
		return
	}
	a.scratch = mergeTwo(a.scratch[:0], a.Values, y)
	a.Values, a.scratch = a.scratch, a.Values
}

// Eval computes the final value of one aggregation function from the
// (merged, finished) aggregate. ok is false when the window was empty and
// the function has no defined value (all except count).
func (a *Agg) Eval(spec FuncSpec) (v float64, ok bool) {
	switch spec.Func {
	case Count:
		return float64(a.CountV), true
	case Sum:
		if a.Empty() {
			return 0, false
		}
		return a.SumV, true
	case Average:
		if a.CountV == 0 {
			return 0, false
		}
		return a.SumV / float64(a.CountV), true
	case Product:
		if a.Empty() {
			return 0, false
		}
		return a.ProdV, true
	case GeoMean:
		if a.CountV == 0 {
			return 0, false
		}
		return math.Pow(a.ProdV, 1/float64(a.CountV)), true
	case Min:
		return a.evalMin()
	case Max:
		return a.evalMax()
	case Median:
		return a.quantile(0.5)
	case Quantile:
		return a.quantile(spec.Arg)
	default:
		return 0, false
	}
}

func (a *Agg) evalMin() (float64, bool) {
	// min answered by the non-decomposable sort when that is the operator
	// the group executed (§4.2.2 sharing between max/min and median).
	if a.Ops&OpDSort != 0 {
		if math.IsInf(a.MinV, 1) {
			return 0, false
		}
		return a.MinV, true
	}
	if len(a.Values) == 0 {
		return 0, false
	}
	return a.Values[0], true
}

func (a *Agg) evalMax() (float64, bool) {
	if a.Ops&OpDSort != 0 {
		if math.IsInf(a.MaxV, -1) {
			return 0, false
		}
		return a.MaxV, true
	}
	if len(a.Values) == 0 {
		return 0, false
	}
	return a.Values[len(a.Values)-1], true
}

// quantile uses the nearest-rank definition on the sorted values.
func (a *Agg) quantile(q float64) (float64, bool) {
	n := len(a.Values)
	if n == 0 {
		return 0, false
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return a.Values[rank-1], true
}
