// Package operator implements Desis' aggregate operators (§4.2 of the
// paper): the primitive computations that aggregation functions are broken
// down into so that different functions can share per-slice work.
//
// Table 1 of the paper maps every supported aggregation function to the
// operators it needs:
//
//	sum            -> sum
//	count          -> count
//	average        -> sum, count
//	product        -> multiplication
//	geometric mean -> multiplication, count
//	max            -> decomposable sort
//	min            -> decomposable sort
//	median         -> non-decomposable sort
//	quantile       -> non-decomposable sort
//
// A slice executes the *union* of the operators required by all queries of
// its query-group exactly once per event, regardless of how many windows and
// functions the slice feeds.
package operator

import "fmt"

// Func identifies an aggregation function a query may request.
type Func uint8

// The aggregation functions of Table 1.
const (
	Sum Func = iota
	Count
	Average
	Product
	GeoMean
	Min
	Max
	Median
	Quantile
	numFuncs
)

var funcNames = [...]string{
	Sum: "sum", Count: "count", Average: "average", Product: "product",
	GeoMean: "geomean", Min: "min", Max: "max", Median: "median", Quantile: "quantile",
}

// String returns the lower-case name used by the query language.
func (f Func) String() string {
	if int(f) < len(funcNames) {
		return funcNames[f]
	}
	return fmt.Sprintf("Func(%d)", uint8(f))
}

// ParseFunc converts a query-language name to a Func.
func ParseFunc(name string) (Func, error) {
	for f, n := range funcNames {
		if n == name {
			return Func(f), nil
		}
	}
	return 0, fmt.Errorf("operator: unknown aggregation function %q", name)
}

// Decomposable reports whether f can be computed from per-slice partial
// results without retaining raw values (distributive or algebraic in the
// Gray et al. classification the paper builds on).
func (f Func) Decomposable() bool {
	return f != Median && f != Quantile
}

// Op is a bit set of the primitive operators a slice must execute.
type Op uint8

// The primitive operators of §4.2.1.
const (
	// OpSum accumulates the running sum of values.
	OpSum Op = 1 << iota
	// OpCount counts events.
	OpCount
	// OpMult accumulates the running product of values.
	OpMult
	// OpDSort is the decomposable sort: it keeps only the running minimum
	// and maximum and drops computed events. Shared between min and max.
	OpDSort
	// OpNDSort is the non-decomposable sort: it retains every value and
	// sorts once when the slice terminates. Shared between max, min,
	// median, and quantile.
	OpNDSort
)

var opNames = []struct {
	op   Op
	name string
}{
	{OpSum, "sum"},
	{OpCount, "count"},
	{OpMult, "mult"},
	{OpDSort, "dsort"},
	{OpNDSort, "ndsort"},
}

// String lists the operators in the set, e.g. "sum|count".
func (o Op) String() string {
	if o == 0 {
		return "none"
	}
	s := ""
	for _, n := range opNames {
		if o&n.op != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	return s
}

// NumOps returns how many primitive operators are in the set. The engine
// uses it to count per-event calculations (Figures 9b/9d/9f of the paper).
func (o Op) NumOps() int {
	n := 0
	for v := o; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// OperatorsOf returns the Table-1 operator set of a single function.
func OperatorsOf(f Func) Op {
	switch f {
	case Sum:
		return OpSum
	case Count:
		return OpCount
	case Average:
		return OpSum | OpCount
	case Product:
		return OpMult
	case GeoMean:
		return OpMult | OpCount
	case Min, Max:
		return OpDSort
	case Median, Quantile:
		return OpNDSort
	default:
		return 0
	}
}

// Union returns the combined operator set for a collection of function
// specs, applying the sharing rule of §4.2.2: when any function needs the
// non-decomposable sort, min and max piggyback on it and their decomposable
// sort is dropped (the sorted values answer min/max for free).
func Union(specs []FuncSpec) Op {
	return UnionFuncs(0, specs)
}

// UnionFuncs folds one query's function specs into an existing union,
// re-applying the §4.2.2 sharing rule. The rule is idempotent and
// associative over folds (dropping OpDSort is re-checked against the merged
// mask), so accumulating per-query masks yields exactly Union over the
// concatenated specs — without materialising a combined spec slice.
func UnionFuncs(o Op, specs []FuncSpec) Op {
	for _, s := range specs {
		o |= OperatorsOf(s.Func)
	}
	if o&OpNDSort != 0 {
		o &^= OpDSort
	}
	return o
}

// FuncSpec is one aggregation function request of a query. Arg carries the
// quantile fraction in (0, 1]; it is ignored by the other functions.
type FuncSpec struct {
	Func Func
	Arg  float64
}

// String renders the spec in query-language form, e.g. "quantile(0.99)".
func (s FuncSpec) String() string {
	if s.Func == Quantile {
		return fmt.Sprintf("quantile(%g)", s.Arg)
	}
	return s.Func.String()
}

// Validate reports whether the spec is well formed.
func (s FuncSpec) Validate() error {
	if s.Func >= numFuncs {
		return fmt.Errorf("operator: unknown function %d", s.Func)
	}
	if s.Func == Quantile && (s.Arg <= 0 || s.Arg > 1) {
		return fmt.Errorf("operator: quantile argument %g outside (0, 1]", s.Arg)
	}
	return nil
}
