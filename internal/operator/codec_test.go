package operator

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAggCodecRoundTrip(t *testing.T) {
	masks := []Op{
		OpSum, OpCount, OpMult, OpDSort, OpNDSort,
		OpSum | OpCount, OpSum | OpCount | OpMult | OpDSort | OpNDSort,
	}
	for _, ops := range masks {
		a := NewAgg(ops)
		for _, v := range []float64{2, -7, 3.25, 9} {
			a.Add(v)
		}
		a.Finish()
		buf := AppendAgg(nil, &a)
		if len(buf) != EncodedSizeAgg(&a) {
			t.Errorf("mask %v: encoded %d bytes, EncodedSizeAgg says %d", ops, len(buf), EncodedSizeAgg(&a))
		}
		var got Agg
		rest, err := DecodeAgg(buf, &got)
		if err != nil {
			t.Fatalf("mask %v: DecodeAgg: %v", ops, err)
		}
		if len(rest) != 0 {
			t.Fatalf("mask %v: %d bytes left", ops, len(rest))
		}
		if got.Ops != ops || got.CountV != a.CountV || got.SumV != a.SumV ||
			got.ProdV != a.ProdV || got.MinV != a.MinV || got.MaxV != a.MaxV {
			t.Errorf("mask %v: got %+v, want %+v", ops, got, a)
		}
		if ops&OpNDSort != 0 && !reflect.DeepEqual(got.Values, a.Values) {
			t.Errorf("mask %v: values %v, want %v", ops, got.Values, a.Values)
		}
	}
}

func TestAggCodecEmpty(t *testing.T) {
	a := NewAgg(OpSum | OpCount | OpNDSort)
	a.Finish()
	var got Agg
	rest, err := DecodeAgg(AppendAgg(nil, &a), &got)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeAgg: %v, rest=%d", err, len(rest))
	}
	if !got.Empty() {
		t.Error("decoded empty agg not empty")
	}
}

func TestAggCodecTruncated(t *testing.T) {
	a := NewAgg(OpSum | OpCount | OpDSort | OpNDSort | OpMult)
	a.Add(1)
	a.Add(2)
	a.Finish()
	buf := AppendAgg(nil, &a)
	for i := 0; i < len(buf); i++ {
		var got Agg
		if _, err := DecodeAgg(buf[:i], &got); err == nil {
			t.Fatalf("DecodeAgg of %d/%d bytes succeeded", i, len(buf))
		}
	}
}

// TestAggMergeMatchesCombinedQuick is a property test: merging the
// aggregates of two halves must equal aggregating the concatenation. This is
// the distributivity invariant that decentralized aggregation relies on.
func TestAggMergeMatchesCombinedQuick(t *testing.T) {
	ops := OpSum | OpCount | OpDSort | OpNDSort
	f := func(seed int64, nx, ny uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, int(nx)%32)
		y := make([]float64, int(ny)%32)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		for i := range y {
			y[i] = rng.NormFloat64() * 100
		}
		a, b, all := NewAgg(ops), NewAgg(ops), NewAgg(ops)
		for _, v := range x {
			a.Add(v)
			all.Add(v)
		}
		for _, v := range y {
			b.Add(v)
			all.Add(v)
		}
		a.Finish()
		b.Finish()
		all.Finish()
		a.Merge(&b)
		if a.CountV != all.CountV {
			return false
		}
		// Summation order differs between the merged and the combined
		// aggregate, so allow floating-point rounding slack.
		if diff := math.Abs(a.SumV - all.SumV); diff > 1e-9*(1+math.Abs(all.SumV)) {
			return false
		}
		if len(x)+len(y) > 0 && (a.MinV != all.MinV || a.MaxV != all.MaxV) {
			return false
		}
		return reflect.DeepEqual(a.Values, all.Values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAggCodecQuick round-trips random aggregates through the wire codec.
func TestAggCodecQuick(t *testing.T) {
	f := func(seed int64, n uint8, maskBits uint8) bool {
		ops := Op(maskBits) & (OpSum | OpCount | OpMult | OpDSort | OpNDSort)
		if ops == 0 {
			ops = OpCount
		}
		rng := rand.New(rand.NewSource(seed))
		a := NewAgg(ops)
		for i := 0; i < int(n)%50; i++ {
			a.Add(rng.Float64()*2000 - 1000)
		}
		a.Finish()
		var got Agg
		rest, err := DecodeAgg(AppendAgg(nil, &a), &got)
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.Ops != a.Ops || got.CountV != a.CountV || got.SumV != a.SumV ||
			got.ProdV != a.ProdV || got.MinV != a.MinV || got.MaxV != a.MaxV {
			return false
		}
		if a.Ops&OpNDSort != 0 && !reflect.DeepEqual(got.Values, a.Values) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
