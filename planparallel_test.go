package desis_test

import (
	"testing"

	"desis"
)

// TestParallelTemplateSingleInstantiation is the shard-ownership regression
// check: a group-by template admitted at runtime is broadcast to every
// shard, but the plan's key→shard map lets only the owning shard
// instantiate each key — a window must never be materialised by two shards
// (which would surface as duplicate results with partial counts).
func TestParallelTemplateSingleInstantiation(t *testing.T) {
	seed := desis.MustParseQuery("tumbling(100ms) count key=0")
	seed.ID = 1
	par, err := desis.NewParallelEngine([]desis.Query{seed}, 3, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 7
	for i := 0; i < 1000; i++ {
		par.Process(desis.Event{Time: int64(i), Key: uint32(i % nKeys), Value: 1})
	}
	tmpl := desis.MustParseQuery("tumbling(100ms) sum key=*")
	tmpl.ID = 7
	if _, err := par.AddQuery(tmpl); err != nil {
		t.Fatal(err)
	}
	// The template must instantiate for keys each shard has already seen and
	// for keys first observed after admission.
	for i := 1000; i < 3000; i++ {
		par.Process(desis.Event{Time: int64(i), Key: uint32(i % (nKeys + 2)), Value: 1})
	}
	par.AdvanceTo(3000)
	par.Barrier()
	rs := par.Results()
	par.Close()

	type wkey struct {
		key   uint32
		start int64
	}
	seen := map[wkey]int{}
	keys := map[uint32]bool{}
	for _, r := range rs {
		if r.QueryID != 7 {
			continue
		}
		seen[wkey{r.Key, r.Start}]++
		keys[r.Key] = true
	}
	if len(keys) != nKeys+2 {
		t.Errorf("template answered %d keys, want %d", len(keys), nKeys+2)
	}
	for w, n := range seen {
		if n != 1 {
			t.Errorf("window key=%d start=%d materialised %d times, want exactly once", w.key, w.start, n)
		}
	}
	// Duplicate admission of the same template id must be refused by the
	// master plan before it reaches any shard.
	if _, err := par.AddQuery(tmpl); err == nil {
		t.Error("duplicate template id accepted")
	}
}
