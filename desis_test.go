package desis_test

import (
	"testing"

	"desis"
)

func TestEngineQuickstart(t *testing.T) {
	q1 := desis.MustParseQuery("tumbling(1s) average key=0")
	q2 := desis.MustParseQuery("tumbling(1s) sum,max key=0")
	eng, err := desis.NewEngine([]desis.Query{q1, q2}, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		eng.Process(desis.Event{Time: int64(i), Key: 0, Value: float64(i % 10)})
	}
	eng.AdvanceTo(4000)
	results := eng.Results()
	if len(results) != 8 { // 4 windows x 2 queries
		t.Fatalf("got %d results, want 8", len(results))
	}
	for _, r := range results {
		if r.Count != 1000 {
			t.Errorf("window %d-%d count %d, want 1000", r.Start, r.End, r.Count)
		}
		for _, v := range r.Values {
			if !v.OK {
				t.Errorf("window %d-%d %v not ok", r.Start, r.End, v.Spec)
			}
		}
	}
	st := eng.Stats()
	// avg and sum+max share the sum operator: sum, count, dsort = 3 ops.
	if st.Calculations != 3*st.Events {
		t.Errorf("calculations %d, want %d (3 per event)", st.Calculations, 3*st.Events)
	}
}

func TestEngineIDAssignmentAndRuntimeQueries(t *testing.T) {
	q := desis.MustParseQuery("tumbling(100ms) count key=0")
	eng, err := desis.NewEngine([]desis.Query{q}, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	added := desis.MustParseQuery("tumbling(100ms) sum key=0")
	if _, err := eng.AddQuery(added); err == nil {
		t.Error("AddQuery without id accepted")
	}
	added.ID = 42
	if _, err := eng.AddQuery(added); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		eng.Process(desis.Event{Time: int64(i), Value: 1})
	}
	eng.AdvanceTo(2000)
	var saw42 bool
	for _, r := range eng.Results() {
		if r.QueryID == 42 {
			saw42 = true
		}
	}
	if !saw42 {
		t.Error("runtime-added query produced no results")
	}
	if err := eng.RemoveQuery(42); err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveQuery(42); err == nil {
		t.Error("double remove succeeded")
	}
}

func TestClusterFacade(t *testing.T) {
	queries := []desis.Query{
		desis.MustParseQuery("tumbling(1s) average key=0"),
		desis.MustParseQuery("sliding(2s,500ms) median key=0"),
	}
	cl, err := desis.NewCluster(queries, desis.ClusterOptions{Locals: 2, Intermediates: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		if err := cl.Push(i%2, []desis.Event{{Time: int64(i), Value: float64(i % 100)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.AdvanceAll(10_000); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	results := cl.Results()
	if len(results) == 0 {
		t.Fatal("cluster produced no results")
	}
	local, inter := cl.NetworkBytes()
	if local == 0 || inter == 0 {
		t.Errorf("network bytes local=%d inter=%d", local, inter)
	}
	// The median query forces values on the wire; the tumbling average
	// rides along in the same partials.
	eng, err := desis.NewEngine(queries, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		eng.Process(desis.Event{Time: int64(i), Value: float64(i % 100)})
	}
	eng.AdvanceTo(10_000)
	want := eng.Results()
	if len(results) != len(want) {
		t.Errorf("cluster %d results, central %d", len(results), len(want))
	}
}

func TestStreamFacade(t *testing.T) {
	s := desis.NewStream(desis.StreamConfig{Seed: 1, Keys: 3})
	prev := int64(-1)
	for i := 0; i < 100; i++ {
		ev := s.Next()
		if ev.Time < prev {
			t.Fatal("stream out of order")
		}
		prev = ev.Time
	}
}
