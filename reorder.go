package desis

import (
	"container/heap"

	"desis/internal/telemetry"
)

// Reorderer turns a bounded-disorder stream into the in-order stream the
// engine requires. Events are buffered until the maximum observed event
// time has moved maxLateness past them, then released in timestamp order
// (ties keep arrival order). Events arriving later than that are dropped
// and counted — the usual allowed-lateness contract of stream processors.
//
// The paper's generators replay in order (§6.1.2); Reorderer extends the
// reproduction to the out-of-order setting Scotty is built for, without
// touching the engine's hot path.
type Reorderer struct {
	lateness int64
	horizon  int64 // forwarded-disorder budget; see NewReordererWithHorizon
	out      func(Event)
	buf      eventHeap
	seq      uint64
	maxSeen  int64
	started  bool
	released int64 // highest released timestamp: the drop threshold
	dropped  uint64
	maxLate  int64 // largest (maxSeen - ev.Time) observed on arrival

	// telDropped/telPending mirror the drop count and buffer occupancy
	// into a telemetry registry when attached; nil-safe no-ops otherwise.
	telDropped *telemetry.Counter
	telPending *telemetry.Gauge
	telMaxLate *telemetry.Gauge
}

// AttachTelemetry mirrors the reorderer's drop count (reorder.dropped)
// and buffer occupancy (reorder.pending) into tel's registry, so a
// silently-dropping disorder bound is visible in -debug-addr and
// desis-ctl -stats instead of only through Dropped().
func (r *Reorderer) AttachTelemetry(tel *Telemetry) {
	reg := tel.registry()
	if reg == nil {
		return
	}
	r.telDropped = reg.Counter("reorder.dropped")
	r.telPending = reg.Gauge("reorder.pending")
	r.telMaxLate = reg.Gauge("reorder.max_lateness_seen")
}

// NewReorderer buffers up to maxLateness milliseconds of disorder and
// forwards in-order events to out (e.g. Engine.Process).
func NewReorderer(maxLateness int64, out func(Event)) *Reorderer {
	return NewReordererWithHorizon(maxLateness, 0, out)
}

// NewReordererWithHorizon splits the allowed lateness between buffering and
// the engine's out-of-order commit path (Options.ReorderHorizon). The
// reorderer buffers only maxLateness-horizon milliseconds of disorder —
// shrinking the heap and the release delay by the horizon — and forwards the
// residue immediately, out of order: an event behind the released frontier
// but within horizon of it skips the buffer entirely and reaches out as-is.
// Feed such a hybrid reorderer only into an engine configured with
// ReorderHorizon >= horizon, which commits those events into its closed
// slices and repairs the affected windows before they emit. horizon is
// clamped to [0, maxLateness]; 0 is exactly NewReorderer.
func NewReordererWithHorizon(maxLateness, horizon int64, out func(Event)) *Reorderer {
	if maxLateness < 0 {
		maxLateness = 0
	}
	if horizon < 0 {
		horizon = 0
	}
	if horizon > maxLateness {
		horizon = maxLateness
	}
	return &Reorderer{lateness: maxLateness, horizon: horizon, out: out}
}

// Process accepts one event in arrival order.
func (r *Reorderer) Process(ev Event) {
	if r.started && r.maxSeen-ev.Time > r.maxLate {
		r.maxLate = r.maxSeen - ev.Time
		r.telMaxLate.Set(r.maxLate)
	}
	if r.started && ev.Time < r.released-r.horizon {
		r.dropped++
		r.telDropped.Inc()
		return
	}
	if r.horizon > 0 && r.started && ev.Time < r.released {
		// Behind the in-order frontier but inside the horizon: hand it to
		// the engine's out-of-order commit path instead of buffering. Its
		// timestamp is >= released-horizon, so an engine deferring emission
		// by the same horizon has not emitted any window it belongs to.
		r.out(ev)
		return
	}
	r.started = true
	heap.Push(&r.buf, orderedEvent{ev: ev, seq: r.seq})
	r.seq++
	if ev.Time > r.maxSeen {
		r.maxSeen = ev.Time
	}
	r.releaseUpTo(r.maxSeen - (r.lateness - r.horizon))
	r.telPending.Set(int64(r.buf.Len()))
}

// Flush releases everything still buffered, in order. Call at end of stream
// before Engine.AdvanceTo.
func (r *Reorderer) Flush() {
	r.releaseUpTo(r.maxSeen + 1)
	r.telPending.Set(int64(r.buf.Len()))
}

func (r *Reorderer) releaseUpTo(t int64) {
	for r.buf.Len() > 0 && r.buf[0].ev.Time <= t {
		oe := heap.Pop(&r.buf).(orderedEvent)
		if oe.ev.Time > r.released {
			r.released = oe.ev.Time
		}
		r.out(oe.ev)
	}
}

// Dropped reports how many events arrived beyond the allowed lateness and
// were discarded.
func (r *Reorderer) Dropped() uint64 { return r.dropped }

// Pending reports how many events are currently buffered.
func (r *Reorderer) Pending() int { return r.buf.Len() }

// LatenessSeen reports the largest disorder observed so far: the maximum of
// maxSeen-eventTime over all arrivals (0 for an in-order stream). Use it to
// size maxLateness, and to check how much of the budget a hybrid horizon
// actually absorbed. Also exported as the reorder.max_lateness_seen gauge.
func (r *Reorderer) LatenessSeen() int64 { return r.maxLate }

type orderedEvent struct {
	ev  Event
	seq uint64
}

// eventHeap is a min-heap on (time, arrival sequence).
type eventHeap []orderedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].ev.Time != h[j].ev.Time {
		return h[i].ev.Time < h[j].ev.Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(orderedEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
