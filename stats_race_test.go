package desis_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"desis"
)

// TestParallelEngineStatsConcurrentReaders is the regression test for the
// Stats data race: shard engines mutate their counters from shard
// goroutines while Stats() sums them from the caller's. Before the
// counters went atomic this was a bona fide race (-race flagged it); now
// concurrent reads must be defined and the post-Barrier totals exact.
func TestParallelEngineStatsConcurrentReaders(t *testing.T) {
	queries := []desis.Query{
		desis.MustParseQuery("tumbling(100ms) sum,count key=0"),
		desis.MustParseQuery("sliding(1s,200ms) max key=1"),
		desis.MustParseQuery("tumbling(50ms) average key=2"),
	}
	tel := desis.NewTelemetry()
	par, err := desis.NewParallelEngine(queries, 3, desis.Options{
		OnResult:  func(desis.Result) {},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nEvents = 30_000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := par.Stats()
				if s.Events < last {
					t.Errorf("events went backwards: %d after %d", s.Events, last)
					return
				}
				last = s.Events
				_ = tel.Text() // registry snapshots race-free alongside
			}
		}()
	}

	for i := 0; i < nEvents; i++ {
		par.Process(desis.Event{Time: int64(i), Key: uint32(i % 3), Value: float64(i)})
	}
	par.Barrier()
	close(stop)
	readers.Wait()

	s := par.Stats()
	if s.Events != nEvents {
		t.Errorf("events = %d, want %d", s.Events, nEvents)
	}
	if s.Slices == 0 || s.Windows == 0 {
		t.Errorf("stats look dead: %+v", s)
	}
	// The per-group telemetry counters must agree with the engine totals.
	var telEvents uint64
	for _, line := range strings.Split(tel.Text(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && strings.HasPrefix(fields[0], "group.") && strings.HasSuffix(fields[0], ".events") {
			n, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad stats line %q: %v", line, err)
			}
			telEvents += n
		}
	}
	if telEvents != s.Events {
		t.Errorf("telemetry per-group events sum %d, engine counted %d", telEvents, s.Events)
	}
	par.Close()
}
