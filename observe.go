package desis

import (
	"net/http"
	"strings"

	"desis/internal/telemetry"
)

// Telemetry is a handle on the runtime observability registry: per-group
// event/slice/window counters, assembly-latency histograms, reorderer
// drops. Create one with NewTelemetry, pass it in Options (or attach it
// to a Reorderer), and read it over HTTP or as text while the engine
// runs — reads are lock-free and never stall ingestion.
type Telemetry struct {
	reg *telemetry.Registry
}

// NewTelemetry creates an empty registry handle.
func NewTelemetry() *Telemetry { return &Telemetry{reg: telemetry.NewRegistry()} }

// registry unwraps the handle; nil-safe so Options.Telemetry == nil means
// "no instrumentation" all the way down.
func (t *Telemetry) registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Handler serves the instruments over HTTP: /debug/stats (JSON),
// /debug/stats.txt (text), and net/http/pprof under /debug/pprof/.
// Mount it on an address of your choosing:
//
//	go http.ListenAndServe("localhost:6060", tel.Handler())
func (t *Telemetry) Handler() http.Handler { return telemetry.DebugMux(t.registry()) }

// Text renders the current instrument values, sorted, one per line.
func (t *Telemetry) Text() string {
	var b strings.Builder
	t.registry().Snapshot().Format(&b)
	return b.String()
}

// Counter reads one counter by name (e.g. "group.1.events"); unknown
// names read 0.
func (t *Telemetry) Counter(name string) uint64 {
	return t.registry().Snapshot().Counter(name)
}

// Gauge reads one gauge by name (e.g. "engine.horizon_disabled"); unknown
// names read 0.
func (t *Telemetry) Gauge(name string) int64 {
	return t.registry().Snapshot().Gauges[name]
}
