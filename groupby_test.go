package desis_test

import (
	"sort"
	"testing"

	"desis"
)

// TestGroupByTemplate: a key=* query instantiates per observed key and
// matches explicit per-key queries exactly.
func TestGroupByTemplate(t *testing.T) {
	tmpl := desis.MustParseQuery("tumbling(100ms) average,count key=*")
	tmpl.ID = 7
	eng, err := desis.NewEngine([]desis.Query{tmpl}, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one explicit query per key.
	var explicit []desis.Query
	for k := 0; k < 5; k++ {
		q := desis.MustParseQuery("tumbling(100ms) average,count key=0")
		q.Key = uint32(k)
		q.ID = uint64(100 + k)
		explicit = append(explicit, q)
	}
	ref, err := desis.NewEngine(explicit, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5000; i++ {
		ev := desis.Event{Time: int64(i), Key: uint32(i % 5), Value: float64(i % 13)}
		eng.Process(ev)
		ref.Process(ev)
	}
	eng.AdvanceTo(5000)
	ref.AdvanceTo(5000)
	got := eng.Results()
	want := ref.Results()
	if len(got) != len(want) {
		t.Fatalf("template produced %d results, explicit %d", len(got), len(want))
	}
	type wkey struct {
		key        uint32
		start, end int64
	}
	gm := map[wkey]desis.Result{}
	for _, r := range got {
		if r.QueryID != 7 {
			t.Fatalf("template result carries id %d, want 7", r.QueryID)
		}
		gm[wkey{r.Key, r.Start, r.End}] = r
	}
	for _, w := range want {
		g, ok := gm[wkey{w.Key, w.Start, w.End}]
		if !ok {
			t.Errorf("missing template window key=%d [%d,%d)", w.Key, w.Start, w.End)
			continue
		}
		if g.Count != w.Count || g.Values[0].Value != w.Values[0].Value {
			t.Errorf("key=%d [%d,%d): got n=%d avg=%g, want n=%d avg=%g",
				w.Key, w.Start, w.End, g.Count, g.Values[0].Value, w.Count, w.Values[0].Value)
		}
	}
}

// TestGroupByTemplateRemoval removes the template and all its instances.
func TestGroupByTemplateRemoval(t *testing.T) {
	tmpl := desis.MustParseQuery("tumbling(100ms) count key=*")
	tmpl.ID = 1
	eng, err := desis.NewEngine([]desis.Query{tmpl}, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		eng.Process(desis.Event{Time: int64(i), Key: uint32(i % 3), Value: 1})
	}
	if err := eng.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}
	eng.Results() // drop what was produced before removal
	for i := 500; i < 1500; i++ {
		eng.Process(desis.Event{Time: int64(i), Key: uint32(i % 3), Value: 1})
	}
	eng.AdvanceTo(2000)
	for _, r := range eng.Results() {
		if r.End > 500 {
			t.Errorf("removed template still answered key=%d [%d,%d)", r.Key, r.Start, r.End)
		}
	}
}

// TestGroupByOnParallelEngine runs a template across shards.
func TestGroupByOnParallelEngine(t *testing.T) {
	tmpl := desis.MustParseQuery("tumbling(100ms) sum key=*")
	tmpl.ID = 3
	par, err := desis.NewParallelEngine([]desis.Query{tmpl}, 3, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		par.Process(desis.Event{Time: int64(i), Key: uint32(i % 7), Value: 1})
	}
	par.AdvanceTo(3000)
	par.Barrier()
	rs := par.Results()
	par.Close()
	// 7 keys x 30 windows.
	if len(rs) != 210 {
		t.Fatalf("got %d results, want 210", len(rs))
	}
	keys := map[uint32]int{}
	for _, r := range rs {
		keys[r.Key]++
	}
	if len(keys) != 7 {
		t.Errorf("results cover %d keys, want 7", len(keys))
	}
	var ks []int
	for _, n := range keys {
		ks = append(ks, n)
	}
	sort.Ints(ks)
	if ks[0] != 30 || ks[len(ks)-1] != 30 {
		t.Errorf("per-key window counts %v, want all 30", ks)
	}
}

// TestGroupByRejectedByCluster: decentralized deployments reject templates
// (key discovery differs per node).
func TestGroupByRejectedByCluster(t *testing.T) {
	tmpl := desis.MustParseQuery("tumbling(100ms) sum key=*")
	tmpl.ID = 1
	if _, err := desis.NewCluster([]desis.Query{tmpl}, desis.ClusterOptions{Locals: 2}); err == nil {
		t.Error("cluster accepted a group-by template")
	}
}

// TestGroupByMixedWithConcrete: templates and concrete queries coexist; the
// concrete query's key also gets template instances.
func TestGroupByMixedWithConcrete(t *testing.T) {
	tmpl := desis.MustParseQuery("tumbling(100ms) max key=*")
	tmpl.ID = 1
	fixed := desis.MustParseQuery("tumbling(200ms) sum key=2")
	fixed.ID = 2
	eng, err := desis.NewEngine([]desis.Query{tmpl, fixed}, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		eng.Process(desis.Event{Time: int64(i), Key: uint32(i % 4), Value: float64(i)})
	}
	eng.AdvanceTo(2000)
	byQuery := map[uint64]int{}
	for _, r := range eng.Results() {
		byQuery[r.QueryID]++
	}
	if byQuery[1] != 4*20 {
		t.Errorf("template windows = %d, want 80", byQuery[1])
	}
	if byQuery[2] != 10 {
		t.Errorf("fixed windows = %d, want 10", byQuery[2])
	}
}
