package desis

import (
	"math/rand"
	"sort"
	"testing"
)

func collectReordered(maxLateness int64, evs []Event) (out []Event, r *Reorderer) {
	r = NewReorderer(maxLateness, func(ev Event) { out = append(out, ev) })
	for _, ev := range evs {
		r.Process(ev)
	}
	r.Flush()
	return out, r
}

func TestReordererSortsWithinLateness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var evs []Event
	base := int64(1000)
	for i := 0; i < 5000; i++ {
		base += int64(rng.Intn(4))
		// Jitter each timestamp backwards by up to the allowed lateness.
		evs = append(evs, Event{Time: base - int64(rng.Intn(50)), Value: float64(i)})
	}
	out, r := collectReordered(50, evs)
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d events; disorder was within lateness", r.Dropped())
	}
	if len(out) != len(evs) {
		t.Fatalf("released %d of %d events", len(out), len(evs))
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Time < out[j].Time }) {
		t.Fatal("released stream is not in timestamp order")
	}
	if r.Pending() != 0 {
		t.Fatalf("%d events still pending after Flush", r.Pending())
	}
}

func TestReordererTiesKeepArrivalOrder(t *testing.T) {
	evs := []Event{
		{Time: 100, Value: 1},
		{Time: 100, Value: 2},
		{Time: 90, Value: 3},
		{Time: 100, Value: 4},
		{Time: 300, Value: 5}, // advances maxSeen far enough to release all
	}
	out, _ := collectReordered(10, evs)
	var hundred []float64
	for _, ev := range out {
		if ev.Time == 100 {
			hundred = append(hundred, ev.Value)
		}
	}
	want := []float64{1, 2, 4}
	if len(hundred) != len(want) {
		t.Fatalf("got %v events at t=100, want %v", hundred, want)
	}
	for i := range want {
		if hundred[i] != want[i] {
			t.Fatalf("ties released as %v, want arrival order %v", hundred, want)
		}
	}
}

func TestReordererDropsAndCountsLate(t *testing.T) {
	var out []Event
	r := NewReorderer(10, func(ev Event) { out = append(out, ev) })
	r.Process(Event{Time: 100})
	r.Process(Event{Time: 200}) // releases t=100 (threshold 190)
	if len(out) != 1 || out[0].Time != 100 {
		t.Fatalf("expected t=100 released, got %v", out)
	}
	// Later than the highest released timestamp: dropped, not reordered.
	r.Process(Event{Time: 50})
	r.Process(Event{Time: 99})
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	// At or after the released watermark: accepted.
	r.Process(Event{Time: 150})
	r.Flush()
	if r.Dropped() != 2 {
		t.Fatalf("Dropped moved to %d after accepting in-bounds events", r.Dropped())
	}
	times := []int64{}
	for _, ev := range out {
		times = append(times, ev.Time)
	}
	want := []int64{100, 150, 200}
	if len(times) != len(want) {
		t.Fatalf("released %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("released %v, want %v", times, want)
		}
	}
}

func TestReordererZeroLateness(t *testing.T) {
	// maxLateness = 0 degenerates to pass-through for in-order input: every
	// event is released as soon as it arrives.
	var out []Event
	r := NewReorderer(0, func(ev Event) { out = append(out, ev) })
	for _, tm := range []int64{10, 20, 20, 30} {
		r.Process(Event{Time: tm})
	}
	if r.Pending() != 0 {
		t.Fatalf("%d pending; zero lateness should release immediately", r.Pending())
	}
	if len(out) != 4 {
		t.Fatalf("released %d of 4", len(out))
	}
	// Out-of-order input is dropped outright.
	r.Process(Event{Time: 25})
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	// Negative lateness is clamped to zero.
	r2 := NewReorderer(-5, func(Event) {})
	r2.Process(Event{Time: 10})
	if r2.Pending() != 0 {
		t.Fatal("negative lateness not clamped to zero")
	}
}

func TestReordererFlushReleasesPending(t *testing.T) {
	var out []Event
	r := NewReorderer(100, func(ev Event) { out = append(out, ev) })
	r.Process(Event{Time: 50})
	r.Process(Event{Time: 40})
	if len(out) != 0 {
		t.Fatalf("released %v before lateness elapsed", out)
	}
	if r.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", r.Pending())
	}
	r.Flush()
	if r.Pending() != 0 || len(out) != 2 {
		t.Fatalf("Flush left %d pending, released %d", r.Pending(), len(out))
	}
	if out[0].Time != 40 || out[1].Time != 50 {
		t.Fatalf("Flush order %v, want [40 50]", out)
	}
}

// TestReordererFeedsEngine runs the documented composition end to end: a
// jittered stream through the Reorderer into an Engine matches the same
// stream pre-sorted.
func TestReordererFeedsEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var evs []Event
	base := int64(1000)
	for i := 0; i < 3000; i++ {
		base += int64(rng.Intn(5))
		evs = append(evs, Event{Time: base - int64(rng.Intn(80)), Key: 0, Value: rng.Float64() * 100})
	}
	mkEngine := func() *Engine {
		eng, err := NewEngine([]Query{
			MustParseQuery("tumbling(1s) sum,count key=0"),
			MustParseQuery("sliding(3s,500ms) max key=0"),
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	reordered := mkEngine()
	r := NewReorderer(80, reordered.Process)
	for _, ev := range evs {
		r.Process(ev)
	}
	r.Flush()
	reordered.AdvanceTo(base + 10_000)
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d in-bounds events", r.Dropped())
	}

	sorted := append([]Event(nil), evs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	oracle := mkEngine()
	oracle.ProcessBatch(sorted)
	oracle.AdvanceTo(base + 10_000)

	got, want := reordered.Results(), oracle.Results()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !equalResult(got[i], want[i]) {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func equalResult(a, b Result) bool {
	if a.QueryID != b.QueryID || a.Start != b.Start || a.End != b.End || a.Count != b.Count || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// TestReordererDifferentialOracle checks the Reorderer against an
// independent model over seeded randomized disorder. The model restates
// the contract instead of reusing the implementation: released order is a
// stable sort of the admitted subset by (time, arrival), and an event is
// admitted iff, at the moment it arrives, its timestamp has not fallen
// below the highest timestamp already released (the `released` boundary —
// not maxSeen-lateness, which would also condemn events the buffer could
// still reorder). Comparing full events (values are unique per arrival)
// verifies tie stability, not just timestamp order.
func TestReordererDifferentialOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 20260805} {
		for _, lateness := range []int64{0, 1, 25, 200} {
			rng := rand.New(rand.NewSource(seed))
			const n = 4000
			base := int64(1000)
			evs := make([]Event, 0, n)
			for i := 0; i < n; i++ {
				base += int64(rng.Intn(6))
				// Jitter reaches well past the lateness bound so every
				// run exercises both reordering and dropping.
				jitter := int64(rng.Intn(int(3*lateness) + 10))
				evs = append(evs, Event{Time: base - jitter, Key: uint32(i % 4), Value: float64(i)})
			}
			out, r := collectReordered(lateness, evs)

			// Replay the admission contract event by event. `pending`
			// holds admitted-but-unreleased timestamps sorted ascending;
			// the released boundary advances to the largest admitted
			// timestamp at or below maxSeen-lateness.
			type arrival struct {
				ev  Event
				seq int
			}
			var admitted []arrival
			var pending []int64
			var released, maxSeen int64
			started := false
			var wantDropped uint64
			for i, ev := range evs {
				if started && ev.Time < released {
					wantDropped++
					continue
				}
				started = true
				admitted = append(admitted, arrival{ev, i})
				j := sort.Search(len(pending), func(k int) bool { return pending[k] > ev.Time })
				pending = append(pending, 0)
				copy(pending[j+1:], pending[j:])
				pending[j] = ev.Time
				if ev.Time > maxSeen {
					maxSeen = ev.Time
				}
				thr := maxSeen - lateness
				cut := sort.Search(len(pending), func(k int) bool { return pending[k] > thr })
				if cut > 0 {
					if pending[cut-1] > released {
						released = pending[cut-1]
					}
					pending = pending[cut:]
				}
			}
			sort.SliceStable(admitted, func(a, b int) bool {
				return admitted[a].ev.Time < admitted[b].ev.Time
			})

			if r.Dropped() != wantDropped {
				t.Fatalf("seed=%d lateness=%d: Dropped = %d, oracle dropped %d",
					seed, lateness, r.Dropped(), wantDropped)
			}
			if uint64(len(out))+r.Dropped() != n {
				t.Fatalf("seed=%d lateness=%d: %d released + %d dropped != %d fed",
					seed, lateness, len(out), r.Dropped(), n)
			}
			if len(out) != len(admitted) {
				t.Fatalf("seed=%d lateness=%d: released %d events, oracle admitted %d",
					seed, lateness, len(out), len(admitted))
			}
			for i := range out {
				want := admitted[i].ev
				if out[i] != want {
					t.Fatalf("seed=%d lateness=%d: event %d released as %+v, oracle says %+v",
						seed, lateness, i, out[i], want)
				}
				if i > 0 && out[i].Time < out[i-1].Time {
					t.Fatalf("seed=%d lateness=%d: emission out of order at %d: %d after %d",
						seed, lateness, i, out[i].Time, out[i-1].Time)
				}
			}
		}
	}
}
