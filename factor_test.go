package desis

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// Factor-optimizer differential tests: the rewrite must be invisible in the
// results. Every workload here runs twice — Optimize on and off — under each
// assembly strategy, with out-of-order input and mid-stream plan churn, and
// the two result sets must match exactly. Values are small integers and the
// workloads avoid product/geomean, so every aggregate is exact in float64
// and the comparison is bitwise, not approximate.

// factorWorkload is one randomized correlated-window workload: a divisibility
// chain (base tumbling → medium sliding → long sliding) the optimizer can
// rewrite, plus bystanders it must not touch (a median query, a different
// key, a disjoint predicate).
type factorWorkload struct {
	base    int64 // base slide (ms) of the chain's feeder
	queries []Query
	added   []Query // admitted mid-stream
	removed []uint64
	events  []Event
	advTo   int64
}

func buildFactorWorkload(rng *rand.Rand, ooo bool) factorWorkload {
	b := []int64{200, 500, 1000}[rng.Intn(3)]
	k2 := int64(6 + rng.Intn(3))
	j2 := int64(3 + rng.Intn(2))
	p2 := b * k2
	k3 := int64(6 + rng.Intn(3))
	j3 := int64(3 + rng.Intn(2))
	p3 := p2 * k3

	w := factorWorkload{base: b}
	w.queries = []Query{
		{ID: 1, Key: 0, Pred: All(), Type: Tumbling, Measure: Time, Length: b,
			Funcs: []FuncSpec{{Func: Sum}}},
		{ID: 2, Key: 0, Pred: All(), Type: Sliding, Measure: Time, Length: j2 * p2, Slide: p2,
			Funcs: []FuncSpec{{Func: Sum}, {Func: Average}, {Func: Max}}},
		{ID: 3, Key: 0, Pred: All(), Type: Sliding, Measure: Time, Length: j3 * p3, Slide: p3,
			Funcs: []FuncSpec{{Func: Min}, {Func: CountFn}}},
		// Median retains values (non-decomposable sort): never fed.
		{ID: 4, Key: 0, Pred: All(), Type: Sliding, Measure: Time, Length: 4 * b, Slide: 2 * b,
			Funcs: []FuncSpec{{Func: Median}}},
		// Different key: its own bucket, its own (possible) chain.
		{ID: 5, Key: 1, Pred: All(), Type: Tumbling, Measure: Time, Length: b,
			Funcs: []FuncSpec{{Func: Sum}}},
		{ID: 6, Key: 1, Pred: All(), Type: Sliding, Measure: Time, Length: j2 * p2, Slide: p2,
			Funcs: []FuncSpec{{Func: Sum}, {Func: Min}}},
		// Disjoint predicate on key 0: a second context/group, not mergeable.
		{ID: 7, Key: 0, Pred: Above(90), Type: Tumbling, Measure: Time, Length: 2 * b,
			Funcs: []FuncSpec{{Func: CountFn}}},
	}
	// Mid-stream churn: an eligible long window joins (or founds) a fed
	// group while the chain is running, and the feeder's own raw member
	// retires — the feed keeps flowing off the injected period grid.
	w.added = []Query{
		{ID: 8, Key: 0, Pred: All(), Type: Sliding, Measure: Time, Length: 2 * j2 * p2, Slide: p2,
			Funcs: []FuncSpec{{Func: Sum}}},
	}
	w.removed = []uint64{1}

	n := 2500
	t := int64(1000)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(int(b/2)) + 1)
		ev := Event{Time: t, Key: uint32(rng.Intn(2)), Value: float64(rng.Intn(100))}
		w.events = append(w.events, ev)
	}
	if ooo {
		// Push a fraction of events late, bounded well inside the horizon,
		// keeping the stream admissible for strict-order runs' comparison
		// (both legs see the identical perturbed sequence).
		for i := range w.events {
			if rng.Intn(5) == 0 {
				w.events[i].Time -= int64(rng.Intn(int(2 * b)))
				if w.events[i].Time < 1000 {
					w.events[i].Time = 1000
				}
			}
		}
	}
	w.advTo = t + 2*j3*p3
	return w
}

// runFactor replays the workload through one engine configuration.
func runFactor(t *testing.T, w factorWorkload, opts Options) ([]Result, string) {
	t.Helper()
	e, err := NewEngine(w.queries, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	third := len(w.events) / 3
	e.ProcessBatch(w.events[:third])
	for _, q := range w.added {
		if _, err := e.AddQuery(q); err != nil {
			t.Fatalf("AddQuery(%d): %v", q.ID, err)
		}
	}
	e.ProcessBatch(w.events[third : 2*third])
	for _, id := range w.removed {
		if err := e.RemoveQuery(id); err != nil {
			t.Fatalf("RemoveQuery(%d): %v", id, err)
		}
	}
	e.ProcessBatch(w.events[2*third:])
	e.AdvanceTo(w.advTo)
	return e.Results(), e.DescribePlan()
}

func sortFactorResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.QueryID != b.QueryID {
			return a.QueryID < b.QueryID
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
}

// compareExact demands bitwise-equal results: the workload's integer values
// keep every supported aggregate exact, so the rewritten plan may not drift
// even in the last ulp.
func compareExact(t *testing.T, got, want []Result) {
	t.Helper()
	sortFactorResults(got)
	sortFactorResults(want)
	if len(got) != len(want) {
		t.Fatalf("optimized plan emitted %d results, unoptimized %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		id := fmt.Sprintf("q%d key=%d [%d,%d)", w.QueryID, w.Key, w.Start, w.End)
		if g.QueryID != w.QueryID || g.Key != w.Key || g.Start != w.Start || g.End != w.End {
			t.Fatalf("result %d: got q%d key=%d [%d,%d), want %s", i, g.QueryID, g.Key, g.Start, g.End, id)
		}
		if g.Count != w.Count {
			t.Fatalf("%s: count %d, want %d", id, g.Count, w.Count)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%s: %d values, want %d", id, len(g.Values), len(w.Values))
		}
		for j := range w.Values {
			gv, wv := g.Values[j], w.Values[j]
			if gv.OK != wv.OK || (wv.OK && gv.Value != wv.Value) {
				t.Fatalf("%s %v: got (%v, %v), want (%v, %v)", id, wv.Spec, gv.Value, gv.OK, wv.Value, wv.OK)
			}
		}
	}
}

// TestFactorRewriteDifferential proves the rewrite invisible: randomized
// correlated workloads with out-of-order input and mid-stream plan churn
// produce bitwise-identical results with the optimizer on and off, under
// every assembly strategy.
func TestFactorRewriteDifferential(t *testing.T) {
	assemblies := []AssemblyKind{AssemblyTwoStacks, AssemblyDABA, AssemblyNaive}
	for seed := int64(0); seed < 6; seed++ {
		for _, asm := range assemblies {
			for _, ooo := range []bool{false, true} {
				seed, asm, ooo := seed, asm, ooo
				t.Run(fmt.Sprintf("seed=%d/%v/ooo=%v", seed, asm, ooo), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					w := buildFactorWorkload(rng, ooo)
					opts := Options{Assembly: asm}
					if ooo {
						opts.ReorderHorizon = time.Duration(4*w.base) * time.Millisecond
					}
					off := opts
					off.Optimize = OptimizeOff
					want, offPlan := runFactor(t, w, off)
					got, onPlan := runFactor(t, w, opts)
					if strings.Contains(offPlan, "fed-from") {
						t.Fatalf("unoptimized plan contains fed groups:\n%s", offPlan)
					}
					if !strings.Contains(onPlan, "fed-from") {
						t.Fatalf("optimized plan rewrote nothing:\n%s", onPlan)
					}
					compareExact(t, got, want)
				})
			}
		}
	}
}

// TestFactorChainDepth pins the chain shape: the long window feeds from the
// medium fed group, not from the raw base group, so super-slices coarsen at
// every level.
func TestFactorChainDepth(t *testing.T) {
	queries := []Query{
		{ID: 1, Key: 0, Pred: All(), Type: Tumbling, Measure: Time, Length: 1000,
			Funcs: []FuncSpec{{Func: Sum}}},
		{ID: 2, Key: 0, Pred: All(), Type: Sliding, Measure: Time, Length: 60_000, Slide: 10_000,
			Funcs: []FuncSpec{{Func: Sum}}},
		{ID: 3, Key: 0, Pred: All(), Type: Sliding, Measure: Time, Length: 600_000, Slide: 60_000,
			Funcs: []FuncSpec{{Func: Sum}}},
	}
	e, err := NewEngine(queries, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	desc := e.DescribePlan()
	if !strings.Contains(desc, "fed-from=0") || !strings.Contains(desc, "fed-from=1") {
		t.Fatalf("want a depth-3 feed chain (group 1 fed from 0, group 2 fed from 1), got:\n%s", desc)
	}
}

// TestFactorSnapshotRoundTrip checkpoints an optimized engine mid-stream and
// resumes it: the feed topology relinks from the plan and the production
// bounds restore, so the resumed run matches an uninterrupted one exactly.
func TestFactorSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := buildFactorWorkload(rng, false)
	w.added = nil // snapshot pairs with the initial query set
	w.removed = nil

	full, err := NewEngine(w.queries, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	full.ProcessBatch(w.events)
	full.AdvanceTo(w.advTo)
	want := full.Results()

	e, err := NewEngine(w.queries, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.ProcessBatch(w.events[:len(w.events)/2])
	partial := e.Results()
	snap := e.Snapshot()
	e2, err := RestoreEngine(w.queries, Options{}, snap)
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	e2.ProcessBatch(w.events[len(w.events)/2:])
	e2.AdvanceTo(w.advTo)
	got := append(partial, e2.Results()...)
	compareExact(t, got, want)
}
