module desis

go 1.22
