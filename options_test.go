package desis

import (
	"strings"
	"testing"
	"time"
)

// Satellite regression tests for Options validation: contradictory option
// combinations must fail construction loudly instead of silently running a
// different configuration than the caller asked for.

func timeQuery(id uint64) Query {
	return Query{ID: id, Pred: All(), Type: Sliding, Measure: Time, Length: 2000, Slide: 1000,
		Funcs: []FuncSpec{{Func: Sum}}}
}

// TestNaiveAssemblyConflict pins every combination of the deprecated
// NaiveAssembly flag with an explicit Assembly: redundant spellings stay
// accepted, a contradiction is a construction error naming both fields.
func TestNaiveAssemblyConflict(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"deprecated-only", Options{NaiveAssembly: true}, false},
		{"deprecated-plus-matching", Options{NaiveAssembly: true, Assembly: AssemblyNaive}, false},
		{"deprecated-plus-default", Options{NaiveAssembly: true, Assembly: AssemblyTwoStacks}, false},
		{"deprecated-vs-daba", Options{NaiveAssembly: true, Assembly: AssemblyDABA}, true},
		{"explicit-only", Options{Assembly: AssemblyDABA}, false},
	}
	queries := []Query{timeQuery(1)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEngine(queries, tc.opts)
			if tc.wantErr {
				if err == nil {
					t.Fatal("NewEngine accepted a contradictory NaiveAssembly/Assembly combination")
				}
				if !strings.Contains(err.Error(), "NaiveAssembly") || !strings.Contains(err.Error(), "Assembly") {
					t.Fatalf("error does not name both conflicting fields: %v", err)
				}
			} else if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			// The parallel facade funnels through the same validation.
			p, perr := NewParallelEngine(queries, 2, tc.opts)
			if (perr != nil) != tc.wantErr {
				t.Fatalf("NewParallelEngine err=%v, want error=%v", perr, tc.wantErr)
			}
			if p != nil {
				p.Close()
			}
		})
	}
}

// TestReorderHorizonShapeValidation: a horizon that EVERY configured query
// shape ignores is a config error — the engine would silently run
// strict-order. A partial mismatch stays legal and instead raises the
// one-shot engine.horizon_disabled gauge.
func TestReorderHorizonShapeValidation(t *testing.T) {
	session := Query{ID: 1, Pred: All(), Type: Session, Measure: Time, Gap: 500,
		Funcs: []FuncSpec{{Func: Sum}}}
	countWin := Query{ID: 2, Pred: All(), Type: Sliding, Measure: Count, Length: 10, Slide: 5,
		Funcs: []FuncSpec{{Func: Sum}}}
	opts := Options{ReorderHorizon: 100 * time.Millisecond}

	for name, qs := range map[string][]Query{
		"session-only": {session},
		"count-only":   {countWin},
		"both-ignore":  {session, countWin},
	} {
		if _, err := NewEngine(qs, opts); err == nil {
			t.Fatalf("%s: NewEngine accepted a ReorderHorizon no query shape can use", name)
		}
	}

	// Dedup disables late repair for every group regardless of shape.
	if _, err := NewEngine([]Query{timeQuery(1)}, Options{ReorderHorizon: 100 * time.Millisecond, Dedup: true}); err == nil {
		t.Fatal("NewEngine accepted ReorderHorizon together with Dedup")
	}

	// Usable shape present: accepted, no degradation signal.
	tel := NewTelemetry()
	e, err := NewEngine([]Query{timeQuery(1)}, Options{ReorderHorizon: 100 * time.Millisecond, Telemetry: tel})
	if err != nil {
		t.Fatalf("NewEngine with usable shape: %v", err)
	}
	e.Process(Event{Time: 1000, Value: 1})
	if g := tel.Gauge("engine.horizon_disabled"); g != 0 {
		t.Fatalf("engine.horizon_disabled = %d for a fully usable query set", g)
	}
}

// TestHorizonDisabledGauge: when only SOME groups ignore the horizon the
// engine runs (partial degradation is legal) but flags it once via the
// engine.horizon_disabled gauge.
func TestHorizonDisabledGauge(t *testing.T) {
	queries := []Query{
		timeQuery(1),
		{ID: 2, Pred: All(), Type: Session, Measure: Time, Gap: 500,
			Funcs: []FuncSpec{{Func: Sum}}},
	}
	tel := NewTelemetry()
	e, err := NewEngine(queries, Options{ReorderHorizon: 100 * time.Millisecond, Telemetry: tel})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if g := tel.Gauge("engine.horizon_disabled"); g != 1 {
		t.Fatalf("engine.horizon_disabled = %d, want 1 (session group forces its horizon to 0)", g)
	}
	// Late-attach replay: a registry attached after construction still
	// observes the latched signal.
	tel2 := NewTelemetry()
	e2, err := NewEngine(queries, Options{ReorderHorizon: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e2.e.AttachTelemetry(tel2.registry())
	if g := tel2.Gauge("engine.horizon_disabled"); g != 1 {
		t.Fatalf("late-attached engine.horizon_disabled = %d, want 1", g)
	}
	_ = e
}
