package desis_test

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"desis"
)

// --- ParallelEngine (multi-root sharding, §6.5.1 mitigation) ---

func parallelQueries(keys int) []desis.Query {
	var qs []desis.Query
	for k := 0; k < keys; k++ {
		q := desis.Query{
			ID: uint64(k + 1), Key: uint32(k), Pred: desis.All(),
			Type: desis.Tumbling, Length: 100,
			Funcs: []desis.FuncSpec{{Func: desis.Average}},
		}
		qs = append(qs, q)
	}
	return qs
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	qs := parallelQueries(8)
	rng := rand.New(rand.NewSource(5))
	evs := make([]desis.Event, 4000)
	tm := int64(0)
	for i := range evs {
		tm += int64(rng.Intn(3))
		evs[i] = desis.Event{Time: tm, Key: uint32(rng.Intn(8)), Value: rng.Float64() * 100}
	}
	seq, err := desis.NewEngine(qs, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq.ProcessBatch(evs)
	seq.AdvanceTo(tm + 1000)
	want := seq.Results()

	par, err := desis.NewParallelEngine(qs, 4, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if par.NumShards() != 4 {
		t.Fatalf("shards = %d", par.NumShards())
	}
	par.ProcessBatch(evs)
	par.AdvanceTo(tm + 1000)
	par.Barrier()
	got := par.Results()
	par.Close()

	key := func(r desis.Result) [3]int64 { return [3]int64{int64(r.QueryID), r.Start, r.End} }
	sortRs := func(rs []desis.Result) {
		sort.Slice(rs, func(i, j int) bool {
			a, b := key(rs[i]), key(rs[j])
			for x := range a {
				if a[x] != b[x] {
					return a[x] < b[x]
				}
			}
			return false
		})
	}
	sortRs(got)
	sortRs(want)
	if len(got) != len(want) {
		t.Fatalf("parallel %d results, sequential %d", len(got), len(want))
	}
	for i := range want {
		if key(got[i]) != key(want[i]) || got[i].Count != want[i].Count {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Values[0].OK && got[i].Values[0].Value != want[i].Values[0].Value {
			t.Errorf("result %d: value %g, want %g", i, got[i].Values[0].Value, want[i].Values[0].Value)
		}
	}
	st := par.Stats()
	if st.Events != uint64(len(evs)) {
		t.Errorf("parallel stats events = %d, want %d", st.Events, len(evs))
	}
}

func TestParallelEngineCallback(t *testing.T) {
	var n atomic.Int64
	par, err := desis.NewParallelEngine(parallelQueries(4), 2, desis.Options{
		OnResult: func(desis.Result) { n.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		par.Process(desis.Event{Time: int64(i), Key: uint32(i % 4), Value: 1})
	}
	par.AdvanceTo(1000)
	par.Barrier()
	par.Close()
	// 4 keys x 10 windows of 100ms each.
	if n.Load() != 40 {
		t.Errorf("callback fired %d times, want 40", n.Load())
	}
}

// --- Reorderer (out-of-order ingestion) ---

func TestReordererSortsWithinLateness(t *testing.T) {
	var got []desis.Event
	r := desis.NewReorderer(100, func(ev desis.Event) { got = append(got, ev) })
	rng := rand.New(rand.NewSource(9))
	// Generate an in-order stream, then jitter each timestamp's arrival
	// position by less than the lateness bound.
	n := 2000
	evs := make([]desis.Event, n)
	for i := range evs {
		evs[i] = desis.Event{Time: int64(i * 2), Value: float64(i)}
	}
	shuffled := blockShuffle(rng, evs, 40) // displacement < 40 pos * 2ms < lateness
	for _, ev := range shuffled {
		r.Process(ev)
	}
	r.Flush()
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d events within lateness bound", r.Dropped())
	}
	if len(got) != n {
		t.Fatalf("released %d events, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("output out of order at %d: %d < %d", i, got[i].Time, got[i-1].Time)
		}
	}
}

func TestReordererDropsTooLate(t *testing.T) {
	var got []desis.Event
	r := desis.NewReorderer(10, func(ev desis.Event) { got = append(got, ev) })
	r.Process(desis.Event{Time: 0})
	r.Process(desis.Event{Time: 100}) // releases everything <= 90
	r.Process(desis.Event{Time: 5})   // too late: released past 5 already? released=0 -> 5>=0 ok... buffered
	r.Flush()
	if r.Dropped() != 0 {
		t.Fatalf("event at 5 dropped although nothing past it was released")
	}
	// Now an event older than an already-released timestamp.
	got = nil
	r2 := desis.NewReorderer(10, func(ev desis.Event) { got = append(got, ev) })
	r2.Process(desis.Event{Time: 50})
	r2.Process(desis.Event{Time: 100}) // releases 50
	r2.Process(desis.Event{Time: 40})  // older than released watermark 50: dropped
	r2.Flush()
	if r2.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r2.Dropped())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatal("released out of order")
		}
	}
}

// blockShuffle permutes events within consecutive fixed-size blocks, which
// bounds every event's arrival displacement by the block size.
func blockShuffle(rng *rand.Rand, evs []desis.Event, block int) []desis.Event {
	out := append([]desis.Event(nil), evs...)
	for b := 0; b < len(out); b += block {
		hi := b + block
		if hi > len(out) {
			hi = len(out)
		}
		seg := out[b:hi]
		rng.Shuffle(len(seg), func(i, j int) { seg[i], seg[j] = seg[j], seg[i] })
	}
	return out
}

// TestReordererEngineEquivalence: a jittered stream through
// Reorderer+Engine equals the sorted stream through Engine.
func TestReordererEngineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := desis.MustParseQuery("tumbling(50ms) sum,count key=0")
		q.ID = 1
		n := 300
		evs := make([]desis.Event, n)
		tm := int64(0)
		for i := range evs {
			tm += int64(rng.Intn(4))
			evs[i] = desis.Event{Time: tm, Value: rng.Float64() * 10}
		}
		sorted := append([]desis.Event(nil), evs...)
		// Bounded disorder: shuffle within 20-position blocks; spacing is
		// <= 3ms, so displacement stays under 60ms << 200ms lateness.
		shuffled := blockShuffle(rng, evs, 20)

		ref, _ := desis.NewEngine([]desis.Query{q}, desis.Options{})
		ref.ProcessBatch(sorted)
		ref.AdvanceTo(tm + 1000)
		want := ref.Results()

		eng, _ := desis.NewEngine([]desis.Query{q}, desis.Options{})
		r := desis.NewReorderer(200, eng.Process)
		for _, ev := range shuffled {
			r.Process(ev)
		}
		r.Flush()
		if r.Dropped() != 0 {
			return false
		}
		eng.AdvanceTo(tm + 1000)
		got := eng.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Count != want[i].Count || got[i].Start != want[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- Snapshot/Restore via the public facade ---

func TestFacadeSnapshotRestore(t *testing.T) {
	qs := []desis.Query{desis.MustParseQuery("tumbling(100ms) average,median key=0")}
	eng, err := desis.NewEngine(qs, desis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 550; i++ {
		eng.Process(desis.Event{Time: int64(i), Value: float64(i)})
	}
	first := eng.Results()
	snap := eng.Snapshot()

	restored, err := desis.RestoreEngine(qs, desis.Options{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 550; i < 1000; i++ {
		restored.Process(desis.Event{Time: int64(i), Value: float64(i)})
	}
	restored.AdvanceTo(1000)
	all := append(first, restored.Results()...)
	if len(all) != 10 {
		t.Fatalf("got %d windows, want 10", len(all))
	}
	// Window [500,600) spans the snapshot cut: its average must still be
	// exact, proving the open slice survived the checkpoint.
	for _, r := range all {
		if r.Start == 500 {
			if r.Values[0].Value != 549.5 {
				t.Errorf("cut-spanning window avg = %g, want 549.5", r.Values[0].Value)
			}
			if r.Values[1].Value != 549 { // nearest-rank median of 500..599
				t.Errorf("cut-spanning window median = %g, want 549", r.Values[1].Value)
			}
		}
	}
	if _, err := desis.RestoreEngine(qs, desis.Options{}, []byte("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}
